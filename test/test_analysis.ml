(* Tests for the analysis layer: dominators (against a naive
   reachability-based oracle on random CFGs), post-dominators, loop
   detection, trip counts, divergence, and the paper's cost model. *)

open Uu_ir
open Uu_analysis

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* Build a function from an adjacency description: [terms.(i)] lists the
   successors of block i (0, 1, or 2 of them); block 0 is the entry. *)
let func_of_graph terms =
  let fn = Func.create ~name:"g" ~params:[ ("c", Types.I1, false) ] ~ret_ty:Types.Void in
  let c = Value.Var (List.hd (Func.param_vars fn)) in
  let labels =
    Array.init (Array.length terms) (fun i ->
        if i = 0 then fn.Func.entry else (Func.fresh_block fn).Block.label)
  in
  Array.iteri
    (fun i succs ->
      let b = Func.block fn labels.(i) in
      b.Block.term <-
        (match succs with
        | [] -> Instr.Ret None
        | [ j ] -> Instr.Br labels.(j)
        | [ j; k ] -> Instr.Cond_br { cond = c; if_true = labels.(j); if_false = labels.(k) }
        | _ -> invalid_arg "func_of_graph"))
    terms;
  (fn, labels)

(* Naive dominance: a dominates b iff b is unreachable from the entry when
   traversal may not pass through a. *)
let naive_dominates fn a b =
  if a = b then true
  else begin
    let visited = Hashtbl.create 17 in
    let rec dfs l =
      if (not (Hashtbl.mem visited l)) && l <> a then begin
        Hashtbl.replace visited l ();
        match Func.find_block fn l with
        | Some blk -> List.iter dfs (Block.successors blk)
        | None -> ()
      end
    in
    dfs fn.Func.entry;
    not (Hashtbl.mem visited b)
  end

let test_dominance_diamond () =
  (* 0 -> 1,2 -> 3 -> ret *)
  let fn, l = func_of_graph [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  let dom = Dominance.compute fn in
  check bool "entry dominates all" true (Dominance.dominates dom l.(0) l.(3));
  check bool "1 does not dominate 3" false (Dominance.dominates dom l.(1) l.(3));
  check (Alcotest.option int) "idom of 3 is 0" (Some l.(0)) (Dominance.idom dom l.(3));
  check (Alcotest.list int) "children of 0" [ l.(1); l.(2); l.(3) ]
    (List.sort compare (Dominance.children dom l.(0)))

let test_dominance_frontier () =
  let fn, l = func_of_graph [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  let dom = Dominance.compute fn in
  let df = Dominance.frontier dom in
  let df_of x =
    match Hashtbl.find_opt df x with
    | Some s -> Value.Label_set.elements s
    | None -> []
  in
  check (Alcotest.list int) "DF(1) = {3}" [ l.(3) ] (df_of l.(1));
  check (Alcotest.list int) "DF(2) = {3}" [ l.(3) ] (df_of l.(2));
  check (Alcotest.list int) "DF(0) empty" [] (df_of l.(0))

let test_postdominance () =
  (* 0 -> 1,2; 1 -> 3; 2 -> 3; 3 -> ret. 3 post-dominates everything. *)
  let fn, l = func_of_graph [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  let pdom = Dominance.compute_post fn in
  check bool "3 postdominates 0" true (Dominance.dominates pdom l.(3) l.(0));
  check bool "1 does not postdominate 0" false (Dominance.dominates pdom l.(1) l.(0));
  check (Alcotest.option int) "ipdom of 0 is 3" (Some l.(3)) (Dominance.idom pdom l.(0));
  (* Block whose ipdom is the virtual exit. *)
  let fn2, l2 = func_of_graph [| [ 1; 2 ]; []; [] |] in
  let pdom2 = Dominance.compute_post fn2 in
  check (Alcotest.option int) "two returns: no ipdom" None (Dominance.idom pdom2 l2.(0))

let random_graph_gen =
  QCheck2.Gen.(
    sized_size (int_range 2 12) (fun n ->
        let node = int_bound (n - 1) in
        map
          (fun succs -> Array.of_list succs)
          (list_repeat n
             (oneof [ return []; map (fun j -> [ j ]) node; map2 (fun j k -> [ j; k ]) node node ]))))

let dominance_props =
  [
    QCheck2.Test.make ~name:"dominance matches naive oracle on random CFGs" ~count:150
      random_graph_gen (fun terms ->
        let fn, labels = func_of_graph terms in
        let dom = Dominance.compute fn in
        let reachable = Cfg.reachable fn in
        Array.for_all
          (fun a ->
            Array.for_all
              (fun b ->
                if Value.Label_set.mem a reachable && Value.Label_set.mem b reachable
                then Dominance.dominates dom a b = naive_dominates fn a b
                else true)
              labels)
          labels);
    QCheck2.Test.make ~name:"idom strictly dominates its node" ~count:150 random_graph_gen
      (fun terms ->
        let fn, labels = func_of_graph terms in
        let dom = Dominance.compute fn in
        Array.for_all
          (fun b ->
            match Dominance.idom dom b with
            | Some a -> Dominance.strictly_dominates dom a b
            | None -> true)
          labels);
    QCheck2.Test.make ~name:"RPO visits defs before uses on acyclic graphs" ~count:100
      random_graph_gen (fun terms ->
        let fn, _ = func_of_graph terms in
        let order = Cfg.reverse_postorder fn in
        (* Sanity: RPO starts at entry and contains no duplicates. *)
        (match order with
        | first :: _ -> first = fn.Func.entry
        | [] -> false)
        && List.length order = List.length (List.sort_uniq compare order));
  ]

let test_loop_detection () =
  let fn, header = Ir_helpers.diamond_loop () in
  let forest = Loops.analyze fn in
  let loops = Loops.loops forest in
  check int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  check int "header" header l.Loops.header;
  check int "depth" 1 l.Loops.depth;
  check int "five blocks" 5 (Value.Label_set.cardinal l.Loops.blocks);
  check int "one latch" 1 (List.length l.Loops.latches);
  check int "one exit" 1 (List.length l.Loops.exits);
  check bool "preheader is entry" true (Loops.preheader fn l = Some fn.Func.entry);
  check bool "not convergent" false (Loops.contains_convergent fn l)

let test_nested_loops () =
  let src =
    {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  int acc = 0;
  int i = 0;
  while (i < n) {
    int j = 0;
    while (j < n) {
      acc = acc + j;
      j = j + 1;
    }
    i = i + 1;
  }
  out[tid] = acc;
}
|}
  in
  let fn = Ir_helpers.compile_one src in
  ignore (Uu_opt.Pass.exec Uu_core.Pipelines.early_passes fn);
  let forest = Loops.analyze fn in
  check int "two loops" 2 (List.length (Loops.loops forest));
  let inner_first = Loops.innermost_first forest in
  check int "innermost first has depth 2" 2 (List.hd inner_first).Loops.depth;
  let outer = List.nth inner_first 1 in
  check int "outer depth 1" 1 outer.Loops.depth;
  check int "outer has one child" 1 (List.length outer.Loops.children);
  check int "top level count" 1 (List.length (Loops.top_level forest))

let test_trip_count () =
  let src =
    {|
kernel k(int* restrict out) {
  int acc = 0;
  int i = 0;
  while (i < 7) {
    acc = acc + i;
    i = i + 1;
  }
  out[0] = acc;
}
|}
  in
  let fn = Ir_helpers.compile_one src in
  ignore (Uu_opt.Pass.exec Uu_core.Pipelines.early_passes fn);
  let forest = Loops.analyze fn in
  let l = List.hd (Loops.loops forest) in
  check (Alcotest.option int) "trip count 7" (Some 7) (Trip_count.constant_trip_count fn l)

let test_trip_count_runtime () =
  let src =
    {|
kernel k(int* restrict out, int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + i;
    i = i + 1;
  }
  out[0] = acc;
}
|}
  in
  let fn = Ir_helpers.compile_one src in
  ignore (Uu_opt.Pass.exec Uu_core.Pipelines.early_passes fn);
  let forest = Loops.analyze fn in
  let l = List.hd (Loops.loops forest) in
  check (Alcotest.option int) "runtime bound -> unknown" None
    (Trip_count.constant_trip_count fn l)

let test_cost_model_formula () =
  check int "f(1,s,u) = u*s" 40 (Cost_model.duplicated_size ~p:1 ~s:10 ~u:4);
  check int "f(2,10,3) = 10+20+40" 70 (Cost_model.duplicated_size ~p:2 ~s:10 ~u:3);
  check int "f(4,5,2) = 5+20" 25 (Cost_model.duplicated_size ~p:4 ~s:5 ~u:2);
  check bool "saturates" true
    (Cost_model.duplicated_size ~p:100_000 ~s:100_000 ~u:8 >= max_int / 2)

let test_choose_unroll_factor () =
  (* Paper defaults: c = 1024, u_max = 8. *)
  check (Alcotest.option int) "p=1 small: picks u_max" (Some 8)
    (Cost_model.choose_unroll_factor ~p:1 ~s:10 ~c:1024 ~u_max:8);
  check (Alcotest.option int) "p=2 s=20 picks 5" (Some 5)
    (Cost_model.choose_unroll_factor ~p:2 ~s:20 ~c:1024 ~u_max:8);
  check (Alcotest.option int) "too big: none" None
    (Cost_model.choose_unroll_factor ~p:8 ~s:200 ~c:1024 ~u_max:8)

let test_path_count () =
  let fn, header = Ir_helpers.diamond_loop () in
  let forest = Loops.analyze fn in
  let l = List.hd (Loops.loops forest) in
  ignore header;
  check int "diamond has 2 paths" 2 (Cost_model.path_count fn l);
  check bool "loop size positive" true (Cost_model.loop_size fn l > 0)

let test_divergence () =
  let src =
    {|
kernel k(int* restrict out, const int* restrict data, int n) {
  int tid = threadIdx.x;
  int uniform = n * 2;
  int tainted = tid * 2;
  int viaload = data[tid];
  out[tid] = uniform + tainted + viaload;
}
|}
  in
  let fn = Ir_helpers.compile_one src in
  ignore (Uu_opt.Pass.exec Uu_core.Pipelines.early_passes fn);
  let div = Divergence.analyze fn in
  (* Find vars by hint. *)
  let var_named name =
    let found = ref None in
    for v = 0 to fn.Func.next_var - 1 do
      if Func.var_hint fn v = Some name && !found = None then found := Some v
    done;
    match !found with Some v -> v | None -> Alcotest.fail ("no var " ^ name)
  in
  (* After mem2reg the slot names move to phis/values; check on uses. *)
  ignore var_named;
  let tid_like = Divergence.value_divergent div in
  (* The store's value should be divergent (depends on tid). *)
  let any_store_divergent = ref false in
  Func.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Instr.Store { value; _ } -> if tid_like value then any_store_divergent := true
          | _ -> ())
        b.Block.instrs)
    fn;
  check bool "stored value divergent" true !any_store_divergent

let test_divergent_loop_detection () =
  let complex = Uu_benchmarks.Complex_app.app in
  let m = Uu_frontend.Lower.compile ~name:"c" complex.Uu_benchmarks.App.source in
  let fn = List.hd m.Func.funcs in
  ignore (Uu_opt.Pass.exec Uu_core.Pipelines.early_passes fn);
  let forest = Loops.analyze fn in
  let div = Divergence.analyze fn in
  let l = List.hd (Loops.loops forest) in
  check bool "complex loop branch is divergent" true
    (Divergence.loop_has_divergent_branch div fn l);
  (* bezier's loop conditions do not depend on the thread id. *)
  let bez = Uu_benchmarks.Bezier_surface.app in
  let m2 = Uu_frontend.Lower.compile ~name:"b" bez.Uu_benchmarks.App.source in
  let fn2 = List.hd m2.Func.funcs in
  ignore (Uu_opt.Pass.exec Uu_core.Pipelines.early_passes fn2);
  let forest2 = Loops.analyze fn2 in
  let div2 = Divergence.analyze fn2 in
  let l2 = List.hd (Loops.loops forest2) in
  check bool "bezier loop branch is uniform" false
    (Divergence.loop_has_divergent_branch div2 fn2 l2)

let test_convergent_loop () =
  let src =
    {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  int i = 0;
  while (i < n) {
    __syncthreads();
    i = i + 1;
  }
  out[tid] = i;
}
|}
  in
  let fn = Ir_helpers.compile_one src in
  ignore (Uu_opt.Pass.exec Uu_core.Pipelines.early_passes fn);
  let forest = Loops.analyze fn in
  let l = List.hd (Loops.loops forest) in
  check bool "syncthreads loop is convergent" true (Loops.contains_convergent fn l)

let suite =
  [
    ("dominance: diamond", `Quick, test_dominance_diamond);
    ("dominance: frontier", `Quick, test_dominance_frontier);
    ("post-dominance", `Quick, test_postdominance);
    ("loop detection", `Quick, test_loop_detection);
    ("nested loops", `Quick, test_nested_loops);
    ("constant trip count", `Quick, test_trip_count);
    ("runtime trip count", `Quick, test_trip_count_runtime);
    ("cost model f(p,s,u)", `Quick, test_cost_model_formula);
    ("heuristic factor choice", `Quick, test_choose_unroll_factor);
    ("path count", `Quick, test_path_count);
    ("divergence taint", `Quick, test_divergence);
    ("divergent loop detection", `Quick, test_divergent_loop_detection);
    ("convergent loop exclusion", `Quick, test_convergent_loop);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) dominance_props
