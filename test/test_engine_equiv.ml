(* Engine equivalence: the decoded execution engine must be
   cycle-for-cycle metric-identical to the reference interpreter, and
   must leave simulated memory in an identical state, for every registry
   application under Baseline, Uu 4, and Uu_heuristic. The reference
   engine is the oracle; any divergence here is a decoded-engine bug. *)

open Uu_support
open Uu_ir
open Uu_core
open Uu_benchmarks
open Uu_gpusim

let check = Alcotest.check
let bool = Alcotest.bool

let configs = [ Pipelines.Baseline; Pipelines.Uu 4; Pipelines.Uu_heuristic ]

(* Compile + simulate one app under one engine, mirroring the harness
   protocol ([Runner.simulate]): fresh workload from the fixed seed, all
   launches in schedule order, one decode cache per compiled module. *)
let run_engine engine (app : App.t) config =
  let m = Uu_frontend.Lower.compile ~name:app.App.name app.App.source in
  List.iter
    (fun f -> ignore (Pipelines.optimize ~targets:Pipelines.All_loops config f))
    m.Func.funcs;
  let instance = app.App.setup (Rng.create 0x5EEDL) in
  let total = Metrics.create () in
  let cache = Decode.create_cache () in
  List.iter
    (fun (l : App.launch) ->
      let f =
        match Func.find_func m l.App.kernel with
        | Some f -> f
        | None -> Alcotest.failf "%s: unknown kernel %s" app.App.name l.App.kernel
      in
      let r =
        Kernel.exec ~config:(Kernel.config ~engine ~decode_cache:cache ()) instance.App.mem f
          ~grid_dim:l.App.grid_dim ~block_dim:l.App.block_dim ~args:l.App.args
      in
      Metrics.add total r.Kernel.metrics)
    instance.App.launches;
  (total, Memory.dump instance.App.mem, instance.App.check ())

let same_memory a b =
  List.length a = List.length b
  && List.for_all2
       (fun (i, xs) (j, ys) ->
         i = j
         && Array.length xs = Array.length ys
         && Array.for_all2 Eval.equal xs ys)
       a b

let test_app (app : App.t) () =
  List.iter
    (fun config ->
      let name = Printf.sprintf "%s/%s" app.App.name (Pipelines.config_to_string config) in
      let mr, memr, checkr = run_engine Kernel.Reference app config in
      let md, memd, checkd = run_engine Kernel.Decoded app config in
      if mr <> md then
        Alcotest.failf "%s: metrics diverge@.ref: %s@.dec: %s" name
          (Format.asprintf "%a" Metrics.pp mr)
          (Format.asprintf "%a" Metrics.pp md);
      check bool (name ^ " memory identical") true (same_memory memr memd);
      check bool (name ^ " oracle passes on both") true
        (checkr = Ok () && checkd = Ok ()))
    configs

let suite =
  List.map
    (fun (app : App.t) ->
      Alcotest.test_case app.App.name `Slow (test_app app))
    Registry.all
