(* Tests for the SIMT simulator: memory, launch validation, lockstep
   execution, divergence and reconvergence, coalescing, the instruction
   cache, atomics, and the nvprof-style counters. *)

open Uu_ir
open Uu_gpusim

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_memory_round_trip () =
  let mem = Memory.create () in
  let b = Memory.alloc_f64 mem [| 1.5; 2.5 |] in
  check (Alcotest.array (Alcotest.float 0.0)) "read back" [| 1.5; 2.5 |] (Memory.read_f64 b);
  let bi = Memory.alloc_i64 mem [| 7L |] in
  check Alcotest.int64 "i64" 7L (Memory.read_i64 bi).(0);
  check int "distinct ids" 1 (Memory.buffer_id bi);
  check bool "bytes tracked" true (Memory.bytes_moved mem > 0)

let test_memory_bounds () =
  let mem = Memory.create () in
  let b = Memory.alloc_i64 mem [| 1L; 2L |] in
  check bool "out of bounds load fails" true
    (try
       ignore (Memory.load mem ~buffer_id:(Memory.buffer_id b) ~offset:5);
       false
     with Failure _ -> true);
  check bool "unknown buffer fails" true
    (try
       ignore (Memory.load mem ~buffer_id:99 ~offset:0);
       false
     with Failure _ -> true)

let test_memory_atomic () =
  let mem = Memory.create () in
  let b = Memory.alloc_i64 mem [| 10L |] in
  let old = Memory.atomic_add mem ~buffer_id:(Memory.buffer_id b) ~offset:0 (Uu_ir.Eval.Int 5L) in
  check bool "returns old" true (old = Uu_ir.Eval.Int 10L);
  check Alcotest.int64 "added" 15L (Memory.read_i64 b).(0)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  check bool "first miss" true (Cache.touch c 1);
  check bool "second miss" true (Cache.touch c 2);
  check bool "hit" false (Cache.touch c 1);
  check bool "evicts LRU (2)" true (Cache.touch c 3);
  check bool "2 was evicted" true (Cache.touch c 2);
  check bool "3 survived? (1 evicted when 2 came back)" true (Cache.mem c 3 || Cache.mem c 1)

let test_launch_validation () =
  let fn =
    Ir_helpers.compile_one "kernel k(int* restrict out, int n) { out[0] = n; }"
  in
  let mem = Memory.create () in
  let out = Memory.zeros_i64 mem 4 in
  check bool "arity mismatch rejected" true
    (try
       ignore (Kernel.exec mem fn ~grid_dim:1 ~block_dim:32 ~args:[ Kernel.Buf out ]);
       false
     with Invalid_argument _ -> true);
  check bool "type mismatch rejected" true
    (try
       let fbuf = Memory.zeros_f64 mem 4 in
       ignore
         (Kernel.exec mem fn ~grid_dim:1 ~block_dim:32
            ~args:[ Kernel.Buf fbuf; Kernel.Int_arg 1L ]);
       false
     with Invalid_argument _ -> true)

let test_thread_indexing () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int n) {
  int gid = threadIdx.x + blockIdx.x * blockDim.x;
  if (gid < n) { out[gid] = gid * 10 + blockIdx.x; }
}
|}
  in
  let mem = Memory.create () in
  let out = Memory.zeros_i64 mem 128 in
  ignore
    (Kernel.exec mem fn ~grid_dim:2 ~block_dim:64
       ~args:[ Kernel.Buf out; Kernel.Int_arg 128L ]);
  let got = Memory.read_i64 out in
  check Alcotest.int64 "thread 0" 0L got.(0);
  check Alcotest.int64 "thread 63 in block 0" 630L got.(63);
  check Alcotest.int64 "thread 64 = block 1 lane 0" 641L got.(64);
  check Alcotest.int64 "thread 127" 1271L got.(127)

let metrics_of src ~elems scalars =
  let fn = Ir_helpers.compile_one src in
  let mem = Memory.create () in
  let out = Memory.zeros_i64 mem elems in
  let args = Kernel.Buf out :: List.map (fun v -> Kernel.Int_arg v) scalars in
  Kernel.exec mem fn ~grid_dim:1 ~block_dim:32 ~args

let test_divergence_counted () =
  (* Per-lane divergent branch. *)
  let r =
    metrics_of ~elems:32
      {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  if (tid & 1) { out[tid] = tid * 3; } else { out[tid] = tid + 100; }
}
|}
      [ 0L ]
  in
  check bool "divergent branch recorded" true
    (r.Kernel.metrics.Metrics.divergent_branches > 0);
  check bool "efficiency below 1" true
    (Metrics.warp_execution_efficiency r.Kernel.metrics ~warp_size:32 < 0.999)

let test_uniform_full_efficiency () =
  let r =
    metrics_of ~elems:32
      {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  int acc = 0;
  int i = 0;
  while (i < n) { acc = acc + i; i = i + 1; }
  out[tid] = acc;
}
|}
      [ 8L ]
  in
  check int "no divergence" 0 r.Kernel.metrics.Metrics.divergent_branches;
  check (Alcotest.float 1e-9) "efficiency 100%" 1.0
    (Metrics.warp_execution_efficiency r.Kernel.metrics ~warp_size:32)

let test_reconvergence_correctness () =
  (* Divergent branches inside a loop: every lane must still compute its
     own correct result (per-lane phi resolution through reconvergence). *)
  let src =
    {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  int acc = 0;
  int i = 0;
  while (i < n + (tid & 3)) {
    if ((i + tid) & 1) { acc = acc + i * tid; } else { acc = acc - 1; }
    i = i + 1;
  }
  out[tid] = acc;
}
|}
  in
  let got = (metrics_of ~elems:32 src [ 6L ]) in
  ignore got;
  let fn = Ir_helpers.compile_one src in
  let out = Ir_helpers.run_kernel fn [ 6L ] in
  let expect tid =
    let acc = ref 0 in
    let bound = 6 + (tid land 3) in
    for i = 0 to bound - 1 do
      if (i + tid) land 1 = 1 then acc := !acc + (i * tid) else acc := !acc - 1
    done;
    Int64.of_int !acc
  in
  for tid = 0 to 31 do
    check Alcotest.int64 (Printf.sprintf "lane %d" tid) (expect tid) out.(tid)
  done

let test_select_counts_misc () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  out[tid] = (tid > n) ? 1 : 2;
}
|}
  in
  ignore (Uu_opt.Pass.exec [ Uu_opt.Mem2reg.pass ] fn);
  let mem = Memory.create () in
  let out = Memory.zeros_i64 mem 32 in
  let r =
    Kernel.exec mem fn ~grid_dim:1 ~block_dim:32
      ~args:[ Kernel.Buf out; Kernel.Int_arg 15L ]
  in
  check bool "selects counted as misc" true (r.Kernel.metrics.Metrics.inst_misc > 0)

let test_coalescing () =
  (* Coalesced: lanes read consecutive addresses -> few transactions.
     Strided: lanes read 16 elements apart -> one transaction per lane. *)
  let run src =
    let fn = Ir_helpers.compile_one src in
    let mem = Memory.create () in
    let data = Memory.zeros_i64 mem 1024 in
    let out = Memory.zeros_i64 mem 32 in
    let r =
      Kernel.exec mem fn ~grid_dim:1 ~block_dim:32
        ~args:[ Kernel.Buf out; Kernel.Buf data ]
    in
    r.Kernel.metrics.Metrics.mem_transactions
  in
  let coalesced =
    run "kernel k(int* restrict out, const int* restrict a) { int t = threadIdx.x; out[t] = a[t]; }"
  in
  let strided =
    run
      "kernel k(int* restrict out, const int* restrict a) { int t = threadIdx.x; out[t] = a[t * 16]; }"
  in
  check bool "strided needs more transactions" true (strided > coalesced)

let test_icache_pressure () =
  (* The same loop, hugely duplicated, must show fetch stalls. *)
  let src = Uu_benchmarks.Complex_app.app.Uu_benchmarks.App.source in
  let run config =
    let m = Uu_frontend.Lower.compile ~name:"c" src in
    let f = List.hd m.Func.funcs in
    ignore (Uu_core.Pipelines.optimize config f);
    let mem = Memory.create () in
    let mk () = Memory.zeros_f64 mem 128 in
    let outa = mk () and outc = mk () and a = mk () and c = mk () in
    Kernel.exec mem f ~grid_dim:1 ~block_dim:128
      ~args:[ Kernel.Buf outa; Kernel.Buf outc; Kernel.Buf a; Kernel.Buf c; Kernel.Int_arg 128L ]
  in
  let base = run Uu_core.Pipelines.Baseline in
  let uu8 = run (Uu_core.Pipelines.Uu 8) in
  check bool "u&u-8 code larger" true (uu8.Kernel.code_bytes > 4 * base.Kernel.code_bytes);
  check bool "u&u-8 fetch stalls higher" true
    (Metrics.stall_inst_fetch uu8.Kernel.metrics
    > Metrics.stall_inst_fetch base.Kernel.metrics)

let test_atomics_across_warps () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x + blockIdx.x * blockDim.x;
  if (tid < n) { int old = atomicAdd(&out[0], 1); out[1] = old * 0 + n; }
}
|}
  in
  let mem = Memory.create () in
  let out = Memory.zeros_i64 mem 2 in
  ignore
    (Kernel.exec mem fn ~grid_dim:4 ~block_dim:64
       ~args:[ Kernel.Buf out; Kernel.Int_arg 200L ]);
  check Alcotest.int64 "200 atomic increments" 200L (Memory.read_i64 out).(0)

let test_runaway_guard () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int n) {
  int i = 0;
  while (n == n) { i = i + 1; }
  out[0] = i;
}
|}
  in
  let mem = Memory.create () in
  let out = Memory.zeros_i64 mem 1 in
  check bool "infinite loop detected" true
    (try
       ignore
         (Kernel.exec ~config:(Kernel.config ~max_warp_cycles:10_000 ()) mem fn ~grid_dim:1 ~block_dim:32
            ~args:[ Kernel.Buf out; Kernel.Int_arg 1L ]);
       false
     with Failure msg -> Astring.String.is_infix ~affix:"cycles" msg)

let test_noise_changes_cycles_not_results () =
  let app = Uu_benchmarks.Bezier_surface.app in
  let m1 = Uu_harness.Runner.run_exn ~noise_seed:1L app Uu_core.Pipelines.Baseline in
  let m2 = Uu_harness.Runner.run_exn ~noise_seed:2L app Uu_core.Pipelines.Baseline in
  check bool "noise perturbs time" true (m1.Uu_harness.Runner.kernel_ms <> m2.Uu_harness.Runner.kernel_ms);
  check bool "results still validate" true
    (m1.Uu_harness.Runner.check = Ok () && m2.Uu_harness.Runner.check = Ok ())

let test_trace_records_schedule () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  if (tid & 1) { out[tid] = 1; } else { out[tid] = 2; }
}
|}
  in
  let mem = Memory.create () in
  let out = Memory.zeros_i64 mem 32 in
  let tracer = Trace.create () in
  ignore
    (Kernel.exec ~config:(Kernel.config ~tracer ()) mem fn ~grid_dim:1 ~block_dim:32
       ~args:[ Kernel.Buf out; Kernel.Int_arg 0L ]);
  let evs = Trace.events tracer in
  check bool "events recorded" true (List.length evs >= 3);
  check bool "first event is the entry with full mask" true
    (match evs with
    | e :: _ ->
      e.Trace.label = fn.Uu_ir.Func.entry
      && Uu_support.Mask.popcount e.Trace.mask = 32
    | [] -> false);
  (* The divergent diamond shows at least two distinct partial masks. *)
  check bool "divergent groups appear" true
    (Trace.max_concurrent_groups tracer ~block_id:0 ~warp_id:0 >= 2);
  check bool "render works" true (String.length (Trace.render fn tracer) > 0)

let test_pre_volta_ablation () =
  (* Without ITS latency hiding, divergent code pays full latency per
     group: the pre-Volta device can only be slower on a divergent
     latency-bound kernel. *)
  let src =
    {|
kernel k(int* restrict out, const int* restrict a, int n) {
  int tid = threadIdx.x;
  int acc = 0;
  int i = 0;
  while (i < n) {
    if ((i + tid) & 1) { acc = acc + a[(acc & 511)]; } else { acc = acc + a[(acc & 255) + 256]; }
    i = i + 1;
  }
  out[tid] = acc;
}
|}
  in
  let run device =
    let fn = Ir_helpers.compile_one src in
    ignore (Uu_core.Pipelines.optimize (Uu_core.Pipelines.Uu 2) fn);
    let mem = Memory.create () in
    let a = Memory.zeros_i64 mem 1024 in
    let out = Memory.zeros_i64 mem 32 in
    let r =
      Kernel.exec ~config:(Kernel.config ~device ()) mem fn ~grid_dim:1 ~block_dim:32
        ~args:[ Kernel.Buf out; Kernel.Buf a; Kernel.Int_arg 12L ]
    in
    r.Kernel.metrics.Metrics.cycles
  in
  check bool "ITS hides latency across divergent groups" true
    (run Device.v100 < run Device.pre_volta)

let test_kernel_time_concurrency () =
  let m = Metrics.create () in
  m.Metrics.cycles <- 1000;
  m.Metrics.warps_launched <- 10;
  check (Alcotest.float 1e-9) "divided by resident warps" 100.0
    (Metrics.kernel_time m ~device:Device.v100);
  m.Metrics.warps_launched <- 1000;
  check (Alcotest.float 1e-9) "capped at max resident" (1000.0 /. 64.0)
    (Metrics.kernel_time m ~device:Device.v100)

(* --- block-scoped shared memory ------------------------------------ *)

(* Promote locals first: alloca arenas live in the shared bank too, and
   these tests pin exact counters for the declared arrays alone. *)
let run_shared ?(engine = Kernel.Decoded) ?(grid = 2) src =
  let fn = Ir_helpers.compile_one src in
  ignore (Uu_opt.Pass.exec [ Uu_opt.Mem2reg.pass ] fn);
  let mem = Memory.create () in
  let out = Memory.zeros_f64 mem (grid * 32) in
  let r =
    Kernel.exec ~config:(Kernel.config ~engine ()) mem fn ~grid_dim:grid ~block_dim:32
      ~args:[ Kernel.Buf out; Kernel.Int_arg (Int64.of_int (grid * 32)) ]
  in
  (r.Kernel.metrics, Memory.read_f64 out)

(* Shared banks are zero-reset at block entry: a kernel that increments
   the reset value sees 1.0 in EVERY block, not an accumulation across
   the (sequentially simulated) grid. *)
let test_shared_reset_per_block () =
  let src =
    {|kernel k(float* restrict out, int n) {
        __shared__ float s[32];
        int lid = threadIdx.x;
        s[lid] = s[lid] + 1.0;
        __syncthreads();
        int gid = lid + blockIdx.x * blockDim.x;
        if (gid < n) { out[gid] = s[lid]; }
      }|}
  in
  List.iter
    (fun engine ->
      let m, out = run_shared ~engine ~grid:4 src in
      check bool "every block read the reset bank" true
        (Array.for_all (fun v -> v = 1.0) out);
      (* Two shared reads per lane (the increment and the copy-out), one
         shared write. *)
      check int "shared loads counted" (2 * 4 * 32 * 8) m.Metrics.sld_bytes;
      check int "shared stores counted" (4 * 32 * 8) m.Metrics.sst_bytes)
    [ Kernel.Reference; Kernel.Decoded ]

(* The bank model: 32 banks of 8 bytes. Unit-stride f64 access touches
   every bank once (1 replay, no conflict); stride-2 folds lanes l and
   l+16 onto the same bank with distinct words (2 replays, 1 conflict
   per access); a same-word broadcast is deduplicated before banking and
   never conflicts. *)
let stride2 =
  {|kernel k(float* restrict out, int n) {
      __shared__ float s[64];
      int lid = threadIdx.x;
      s[lid * 2] = 1.0;
      __syncthreads();
      out[lid + blockIdx.x * blockDim.x] = s[lid * 2];
    }|}

let broadcast =
  {|kernel k(float* restrict out, int n) {
      __shared__ float s[4];
      if (threadIdx.x == 0) { s[0] = 3.0; }
      __syncthreads();
      out[threadIdx.x + blockIdx.x * blockDim.x] = s[0];
    }|}

let test_shared_bank_conflicts () =
  List.iter
    (fun engine ->
      let m, _ = run_shared ~engine ~grid:1 stride2 in
      (* One store + one load, each 2-way conflicted. *)
      check int "stride-2 replays" 4 m.Metrics.shared_transactions;
      check int "stride-2 conflicts" 2 m.Metrics.shared_bank_conflicts;
      let m, out = run_shared ~engine ~grid:1 broadcast in
      check int "broadcast is one transaction each way" 2
        m.Metrics.shared_transactions;
      check int "broadcast never conflicts" 0 m.Metrics.shared_bank_conflicts;
      check bool "broadcast value delivered" true
        (Array.for_all (fun v -> v = 3.0) out))
    [ Kernel.Reference; Kernel.Decoded ]

(* Both engines must agree on the shared-memory counters exactly, like
   every other metric. *)
let test_shared_engines_agree () =
  List.iter
    (fun src ->
      let mr, outr = run_shared ~engine:Kernel.Reference src in
      let md, outd = run_shared ~engine:Kernel.Decoded src in
      check bool "metrics byte-identical" true (mr = md);
      check bool "memory byte-identical" true (outr = outd))
    [ stride2; broadcast ]

let test_shared_out_of_bounds () =
  let src =
    {|kernel k(float* restrict out, int n) {
        __shared__ float s[8];
        s[threadIdx.x] = 1.0;
        out[threadIdx.x + blockIdx.x * blockDim.x] = 0.0;
      }|}
  in
  List.iter
    (fun engine ->
      check bool "shared overrun fails" true
        (try
           ignore (run_shared ~engine src);
           false
         with Failure msg ->
           Astring.String.is_infix ~affix:"out of bounds" msg))
    [ Kernel.Reference; Kernel.Decoded ]

(* --- the barrier scheduler (multi-warp blocks) ---------------------- *)

let run_block ?(engine = Kernel.Decoded) ?(grid = 2) ~block src =
  let fn = Ir_helpers.compile_one src in
  let mem = Memory.create () in
  let out = Memory.zeros_f64 mem (grid * block) in
  let r =
    Kernel.exec ~config:(Kernel.config ~engine ()) mem fn ~grid_dim:grid
      ~block_dim:block
      ~args:[ Kernel.Buf out; Kernel.Int_arg (Int64.of_int (grid * block)) ]
  in
  (r.Kernel.metrics, Memory.read_f64 out)

(* Warp 0 stages 3.0, warp 1 stages 5.0; after the barrier every thread
   reads its partner's cell one warp over. Under run-to-completion warp
   order, warp 0 would read zeros (warp 1 had not run yet) — the exact
   case memory-model.md used to document as a known limitation. *)
let cross_warp_swap =
  {|kernel k(float* restrict out, int n) {
      __shared__ float s[64];
      int lid = threadIdx.x;
      float v = 3.0;
      if (lid > 31) { v = 5.0; }
      s[lid] = v;
      __syncthreads();
      int partner = lid + 32;
      if (partner > 63) { partner = partner - 64; }
      int gid = lid + blockIdx.x * blockDim.x;
      if (gid < n) { out[gid] = s[partner]; }
    }|}

let test_cross_warp_dataflow () =
  let runs =
    List.map
      (fun engine -> run_block ~engine ~block:64 cross_warp_swap)
      [ Kernel.Reference; Kernel.Decoded ]
  in
  List.iter
    (fun ((_ : Metrics.t), out) ->
      Array.iteri
        (fun i v ->
          let expected = if i mod 64 < 32 then 5.0 else 3.0 in
          check (Alcotest.float 0.0)
            (Printf.sprintf "out[%d] crossed the warp boundary" i)
            expected v)
        out)
    runs;
  match runs with
  | [ (mr, outr); (md, outd) ] ->
    check bool "metrics byte-identical at block_dim 64" true (mr = md);
    check bool "memory byte-identical at block_dim 64" true (outr = outd)
  | _ -> assert false

(* Warp 0 burns a 64-iteration loop before the barrier while warp 1
   arrives almost immediately: the scheduler settles the block clock at
   release and charges warp 1 the difference as barrier_wait_cycles. A
   single-warp block is always alone at the barrier and never waits. *)
let lopsided =
  {|kernel k(float* restrict out, int n) {
      __shared__ float s[64];
      int lid = threadIdx.x;
      float acc = 0.0;
      if (lid < 32) {
        int i = 0;
        while (i < 64) { acc = acc + 1.0; i = i + 1; }
      }
      s[lid] = acc;
      __syncthreads();
      int gid = lid + blockIdx.x * blockDim.x;
      if (gid < n) { out[gid] = s[63 - lid]; }
    }|}

let test_barrier_wait_accounted () =
  List.iter
    (fun engine ->
      let m64, out = run_block ~engine ~grid:1 ~block:64 lopsided in
      Array.iteri
        (fun i v ->
          (* Reverse-indexed copy-out: the slow warp's 64.0 partials land
             in the fast warp's half and vice versa. *)
          let expected = if i < 32 then 0.0 else 64.0 in
          check (Alcotest.float 0.0) (Printf.sprintf "out[%d]" i) expected v)
        out;
      check bool "the fast warp waited at the barrier" true
        (m64.Metrics.barrier_wait_cycles > 0);
      let m32, _ = run_block ~engine ~grid:1 ~block:32 lopsided in
      check int "a single-warp block never waits" 0
        m32.Metrics.barrier_wait_cycles)
    [ Kernel.Reference; Kernel.Decoded ]

(* __syncthreads() must be barrier-uniform at both granularities: a
   partially-active warp trips the executor, and a warp that exits while
   a sibling waits trips the scheduler. Both engines raise the same
   message, which names the offending shape. *)
let test_divergent_barrier_traps () =
  let expect_trap ~block ~affix src =
    List.iter
      (fun engine ->
        check bool (Printf.sprintf "trap mentions %S" affix) true
          (try
             ignore (run_block ~engine ~grid:1 ~block src);
             false
           with Failure msg ->
             Astring.String.is_infix ~affix:"divergent __syncthreads()" msg
             && Astring.String.is_infix ~affix msg))
      [ Kernel.Reference; Kernel.Decoded ]
  in
  expect_trap ~block:32 ~affix:"16 of 32 lanes"
    {|kernel k(float* restrict out, int n) {
        if (threadIdx.x < 16) { __syncthreads(); }
        out[threadIdx.x] = 1.0;
      }|};
  expect_trap ~block:64 ~affix:"1 of 2 warps"
    {|kernel k(float* restrict out, int n) {
        if (threadIdx.x < 32) { __syncthreads(); }
        out[threadIdx.x + blockIdx.x * blockDim.x] = 1.0;
      }|}

let suite =
  [
    ("memory round trip", `Quick, test_memory_round_trip);
    ("memory bounds checking", `Quick, test_memory_bounds);
    ("memory atomics", `Quick, test_memory_atomic);
    ("LRU cache", `Quick, test_cache_lru);
    ("launch validation", `Quick, test_launch_validation);
    ("thread indexing", `Quick, test_thread_indexing);
    ("divergence counted", `Quick, test_divergence_counted);
    ("uniform runs at full efficiency", `Quick, test_uniform_full_efficiency);
    ("reconvergence per-lane correctness", `Quick, test_reconvergence_correctness);
    ("selects count as misc", `Quick, test_select_counts_misc);
    ("memory coalescing", `Quick, test_coalescing);
    ("icache pressure from duplication", `Quick, test_icache_pressure);
    ("atomics across warps", `Quick, test_atomics_across_warps);
    ("runaway loop guard", `Quick, test_runaway_guard);
    ("noise affects time not results", `Quick, test_noise_changes_cycles_not_results);
    ("execution trace", `Quick, test_trace_records_schedule);
    ("pre-Volta ITS ablation", `Quick, test_pre_volta_ablation);
    ("kernel time concurrency model", `Quick, test_kernel_time_concurrency);
    ("shared memory reset per block", `Quick, test_shared_reset_per_block);
    ("shared bank conflicts", `Quick, test_shared_bank_conflicts);
    ("shared metrics engine agreement", `Quick, test_shared_engines_agree);
    ("shared out of bounds", `Quick, test_shared_out_of_bounds);
    ("cross-warp shared dataflow", `Quick, test_cross_warp_dataflow);
    ("barrier wait accounting", `Quick, test_barrier_wait_accounted);
    ("divergent barrier traps", `Quick, test_divergent_barrier_traps);
  ]
