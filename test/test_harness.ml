(* Tests for the experiment harness: the runner, the per-loop sweep, the
   Table I / figure generators, and the report renderers. Kept to two
   small apps so the whole suite stays fast. *)

open Uu_core
open Uu_harness

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let bezier =
  match Uu_benchmarks.Registry.find "bezier-surface" with
  | Some a -> a
  | None -> assert false

let complex =
  match Uu_benchmarks.Registry.find "complex" with
  | Some a -> a
  | None -> assert false

let test_registry () =
  (* The paper's 16 Table I applications plus the shared-memory wave
     (dbuf, stencil1d, stencil2d, treduce), the multi-warp variants
     of stencil1d and treduce at block_dim 64/128/256, and the atomic
     wave (histogram). *)
  check int "27 applications" 27 (List.length Uu_benchmarks.Registry.all);
  check bool "find works" true (Uu_benchmarks.Registry.find "XSBench" <> None);
  check bool "unknown app" true (Uu_benchmarks.Registry.find "nope" = None);
  check (Alcotest.list Alcotest.string) "names"
    [
      "bezier-surface"; "bn"; "bspline-vgh"; "ccs"; "clink"; "complex"; "contract";
      "coordinates"; "dbuf"; "haccmk"; "histogram"; "lavaMD"; "libor"; "mandelbrot";
      "qtclustering"; "quicksort"; "rainflow"; "stencil1d"; "stencil1d-64";
      "stencil1d-128"; "stencil1d-256"; "stencil2d"; "treduce"; "treduce-64";
      "treduce-128"; "treduce-256"; "XSBench";
    ]
    Uu_benchmarks.Registry.names

let test_loop_inventory () =
  let loops = Runner.loop_inventory bezier in
  check bool "bezier has a loop" true (loops <> []);
  List.iter
    (fun (l : Runner.loop_ref) ->
      check Alcotest.string "kernel name" "bezier_blend" l.Runner.kernel)
    loops;
  (* Deterministic across calls. *)
  check bool "stable ids" true (Runner.loop_inventory bezier = loops)

let test_runner_baseline () =
  let m = Runner.run_exn bezier Pipelines.Baseline in
  check bool "kernel time positive" true (m.Runner.kernel_ms > 0.0);
  check bool "transfer modeled" true (m.Runner.transfer_ms > 0.0);
  check bool "code size includes rest bytes" true
    (m.Runner.code_bytes > bezier.Uu_benchmarks.App.rest_bytes);
  check bool "oracle passed" true (m.Runner.check = Ok ())

let test_runner_determinism () =
  let a = Runner.run_exn bezier Pipelines.Baseline in
  let b = Runner.run_exn bezier Pipelines.Baseline in
  check (Alcotest.float 1e-12) "deterministic without noise" a.Runner.kernel_ms
    b.Runner.kernel_ms

let test_runner_per_loop_targeting () =
  let loop = List.hd (Runner.loop_inventory bezier) in
  let targeted = Runner.run_exn ~target:loop bezier (Pipelines.Uu 2) in
  check bool "targeted run validates" true (targeted.Runner.check = Ok ());
  (* Targeting a loop under u&u changes the code relative to baseline. *)
  let base = Runner.run_exn bezier Pipelines.Baseline in
  check bool "transform changed code size" true
    (targeted.Runner.code_bytes <> base.Runner.code_bytes)

let test_uu_beats_baseline_on_bezier () =
  let base = Runner.run_exn bezier Pipelines.Baseline in
  let uu = Runner.run_exn bezier (Pipelines.Uu 4) in
  check bool "u&u-4 speeds up bezier (paper Fig 7)" true
    (base.Runner.kernel_ms /. uu.Runner.kernel_ms > 1.2)

let test_uu_slows_complex () =
  let base = Runner.run_exn complex Pipelines.Baseline in
  let uu = Runner.run_exn complex (Pipelines.Uu 8) in
  check bool "u&u-8 slows complex (paper SV)" true
    (base.Runner.kernel_ms /. uu.Runner.kernel_ms < 0.5)

let test_divergence_heuristic_protects_complex () =
  let plain = Runner.run_exn complex Pipelines.Uu_heuristic in
  let aware = Runner.run_exn complex Pipelines.Uu_heuristic_divergence in
  check bool "divergence-aware heuristic avoids the slowdown" true
    (aware.Runner.kernel_ms < plain.Runner.kernel_ms)

let test_table1 () =
  let rows = Table1.compute ~runs:3 ~apps:[ bezier; complex ] () in
  check int "two rows" 2 (List.length rows);
  let r = List.hd rows in
  check Alcotest.string "name" "bezier-surface" r.Table1.name;
  check bool "compute fraction in (0,1]" true
    (r.Table1.compute_fraction > 0.0 && r.Table1.compute_fraction <= 1.0);
  check bool "rsd small but nonzero" true
    (r.Table1.baseline_rsd > 0.0 && r.Table1.baseline_rsd < 0.2);
  let rendered = Table1.render rows in
  check bool "render mentions app" true
    (Astring.String.is_infix ~affix:"bezier-surface" rendered);
  check int "csv rows" 2 (List.length (Table1.to_csv rows))

let test_sweep_and_figures () =
  let sweep = Sweep.run ~apps:[ bezier ] () in
  check bool "has points" true (sweep.Sweep.points <> []);
  (* Every loop-config combination is present. *)
  let loops = Runner.loop_inventory bezier in
  check int "points = loops x configs + heuristic"
    ((List.length loops * List.length Sweep.loop_configs) + 1)
    (List.length sweep.Sweep.points);
  List.iter
    (fun (p : Sweep.point) ->
      check bool "speedup positive" true (p.Sweep.speedup > 0.0);
      check bool "code ratio positive" true (p.Sweep.code_ratio > 0.0))
    sweep.Sweep.points;
  (* u&u code grows with the factor on this loop. *)
  let code_of factor =
    match
      List.find_opt
        (fun (p : Sweep.point) ->
          p.Sweep.config = Pipelines.Uu factor && p.Sweep.loop <> None)
        sweep.Sweep.points
    with
    | Some p -> p.Sweep.code_ratio
    | None -> 0.0
  in
  check bool "code ratio grows with factor" true (code_of 4 > code_of 2);
  List.iter
    (fun render ->
      check bool "figure renders" true (String.length (render sweep) > 0))
    [ Figures.fig6a; Figures.fig6b; Figures.fig6c; Figures.fig7; Figures.fig8a;
      Figures.fig8b ];
  check bool "geomean summary" true
    (Astring.String.is_infix ~affix:"geomean" (Figures.geomean_summary sweep));
  check bool "fig7 best >= 1 for bezier" true
    (match Figures.best_per_app sweep (Pipelines.Uu 4) with
    | [ (_, s) ] -> s > 1.0
    | _ -> false)

let test_report_renderers () =
  let table = Report.render_table ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333" ] ] in
  check bool "aligned" true (Astring.String.is_infix ~affix:"a    b" table);
  let path = Filename.temp_file "uu_test" ".csv" in
  Report.write_csv ~path ~header:[ "x"; "y" ] [ [ "1"; "he,llo" ] ];
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  check Alcotest.string "csv header" "x,y" l1;
  check Alcotest.string "csv escaping" "1,\"he,llo\"" l2;
  check Alcotest.string "pct" "12.34%" (Report.pct 0.1234);
  check Alcotest.string "ratio" "1.36x" (Report.ratio 1.3649)

let test_counters_analysis () =
  let cs = Counters.analyze () in
  check int "three SV cases" 3 (List.length cs);
  let xs = List.find (fun c -> c.Counters.app = "XSBench") cs in
  check bool "xsbench misc drops" true (xs.Counters.misc_change < 0.8);
  check bool "xsbench speeds up" true (xs.Counters.speedup > 1.0);
  let cx = List.find (fun c -> c.Counters.app = "complex") cs in
  check bool "complex slows down" true (cx.Counters.speedup < 1.0);
  check bool "complex efficiency collapses" true
    (cx.Counters.uu_eff < 0.5 *. cx.Counters.base_eff);
  check bool "complex fetch stalls grow" true
    (cx.Counters.uu_stall_fetch > cx.Counters.base_stall_fetch);
  check bool "render" true (String.length (Counters.render cs) > 0)

let suite =
  [
    ("registry", `Quick, test_registry);
    ("loop inventory", `Quick, test_loop_inventory);
    ("runner baseline", `Quick, test_runner_baseline);
    ("runner determinism", `Quick, test_runner_determinism);
    ("per-loop targeting", `Quick, test_runner_per_loop_targeting);
    ("u&u speeds up bezier", `Quick, test_uu_beats_baseline_on_bezier);
    ("u&u slows down complex", `Slow, test_uu_slows_complex);
    ("divergence-aware heuristic", `Slow, test_divergence_heuristic_protects_complex);
    ("table1", `Slow, test_table1);
    ("sweep and figures", `Slow, test_sweep_and_figures);
    ("report renderers", `Quick, test_report_renderers);
    ("SV counters", `Slow, test_counters_analysis);
  ]
