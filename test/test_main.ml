let () =
  Alcotest.run "uu"
    [
      ("support", Test_support.suite);
      ("ir", Test_ir.suite);
      ("parser-ir", Test_parser_ir.suite);
      ("analysis", Test_analysis.suite);
      ("frontend", Test_frontend.suite);
      ("passes", Test_passes.suite);
      ("transforms", Test_transforms.suite);
      ("remarks", Test_remarks.suite);
      ("gpusim", Test_gpusim.suite);
      ("engine-equiv", Test_engine_equiv.suite);
      ("differential", Test_differential.suite);
      ("harness", Test_harness.suite);
      ("parallel", Test_parallel.suite);
      ("parallel-sim", Test_parallel_sim.suite);
      ("properties", Test_properties.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("serve", Test_serve.suite);
    ]
