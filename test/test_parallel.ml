(* Tests for the parallel job graph: the domain pool (deterministic
   ordering, actual multi-domain execution, fault capture), the job
   abstraction (content-hash keys, failure records, retries), the
   on-disk result cache (byte-identical hits, key invalidation), and the
   parallel-equals-serial guarantee of the sweep. *)

open Uu_core
open Uu_harness

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let bezier =
  match Uu_benchmarks.Registry.find "bezier-surface" with
  | Some a -> a
  | None -> assert false

let fresh_cache_dir () =
  let path = Filename.temp_file "uu_cache" "" in
  Sys.remove path;
  path

let test_map_order () =
  let items = List.init 100 Fun.id in
  check (Alcotest.list int) "input order preserved" (List.map (fun i -> i * i) items)
    (Uu_support.Parallel.map ~jobs:4 (fun i -> i * i) items);
  check (Alcotest.list int) "jobs:1 runs inline" (List.map (fun i -> i + 1) items)
    (Uu_support.Parallel.map ~jobs:1 (fun i -> i + 1) items)

let test_map_uses_domains () =
  if Uu_support.Parallel.available_domains () < 2 then ()
  else begin
    (* Workers rendezvous before returning their domain id, so at least
       two distinct domains must participate (with a deadline so a
       pathological scheduler degrades to a test failure, not a hang). *)
    let started = Atomic.make 0 in
    let ids =
      Uu_support.Parallel.map ~jobs:2
        (fun _ ->
          Atomic.incr started;
          let deadline = Unix.gettimeofday () +. 5.0 in
          while Atomic.get started < 2 && Unix.gettimeofday () < deadline do
            Domain.cpu_relax ()
          done;
          (Domain.self () :> int))
        [ 0; 1 ]
    in
    check bool "two distinct domains" true
      (match ids with [ a; b ] -> a <> b | _ -> false)
  end

let test_map_result_captures () =
  let results =
    Uu_support.Parallel.map_result ~jobs:3
      (fun i -> if i mod 2 = 0 then i else failwith ("odd " ^ string_of_int i))
      [ 0; 1; 2; 3 ]
  in
  check bool "evens succeed, odds fail, order kept" true
    (match results with
    | [ Ok 0; Error (Failure a); Ok 2; Error (Failure b) ] ->
      a = "odd 1" && b = "odd 3"
    | _ -> false)

let test_job_keys () =
  let j = Jobs.job bezier Pipelines.Baseline in
  check Alcotest.string "key is stable" (Jobs.key j) (Jobs.key j);
  let differs j' = Jobs.key j <> Jobs.key j' in
  check bool "config changes key" true (differs (Jobs.job bezier (Pipelines.Uu 2)));
  check bool "factor changes key" true
    (Jobs.key (Jobs.job bezier (Pipelines.Uu 2))
    <> Jobs.key (Jobs.job bezier (Pipelines.Uu 4)));
  let loop = List.hd (Runner.loop_inventory bezier) in
  check bool "target changes key" true
    (differs (Jobs.job ~target:loop bezier Pipelines.Baseline));
  check bool "protocol changes key" true
    (differs (Jobs.job ~protocol:(Jobs.Noisy { runs = 3 }) bezier Pipelines.Baseline));
  check bool "pipeline version changes key" true
    (Jobs.key ~version:"test-bump" j <> Jobs.key j);
  (* Noise seeds are pure functions of (key, run index). *)
  let k = Jobs.key j in
  check bool "noise seed deterministic" true
    (Jobs.noise_seed ~key:k 0 = Jobs.noise_seed ~key:k 0
    && Jobs.noise_seed ~key:k 0 <> Jobs.noise_seed ~key:k 1)

let test_failure_record () =
  let boom =
    Jobs.custom ~name:"boom" ~compile:(fun () -> failwith "boom") bezier
      Pipelines.Baseline
  in
  let good = Jobs.job bezier Pipelines.Baseline in
  match Jobs.run_all ~jobs:2 [ boom; good ] with
  | [ bad_r; good_r ] ->
    (match bad_r.Jobs.outcome with
    | Error f ->
      check int "retried once" 2 f.Jobs.attempts;
      check bool "message preserved" true
        (Astring.String.is_infix ~affix:"boom" f.Jobs.message);
      check bool "label names the job" true
        (Astring.String.is_infix ~affix:"bezier-surface" f.Jobs.job_label)
    | Ok _ -> Alcotest.fail "raising job did not fail");
    check bool "sibling job unaffected" true
      (match good_r.Jobs.outcome with Ok (_ :: _) -> true | _ -> false);
    (match
       Jobs.run_all [ boom ] |> List.map (fun r -> Jobs.measurements_exn r)
     with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "measurements_exn did not raise")
  | _ -> Alcotest.fail "expected two results"

let test_cache_round_trip () =
  let cache = Result_cache.create ~dir:(fresh_cache_dir ()) in
  let j = Jobs.job ~protocol:(Jobs.Noisy { runs = 2 }) bezier (Pipelines.Uu 2) in
  let cold = Jobs.run_all ~cache [ j ] in
  let warm = Jobs.run_all ~cache [ j ] in
  (match (cold, warm) with
  | [ c ], [ w ] ->
    check bool "cold run executed" false c.Jobs.from_cache;
    check bool "warm run served from cache" true w.Jobs.from_cache;
    let spec = Jobs.spec j in
    (* Byte-identical: re-encoding the decoded measurements reproduces
       the cold run's encoding exactly. *)
    check Alcotest.string "cache round-trip is byte-identical"
      (Result_cache.encode ~spec (Jobs.measurements_exn c))
      (Result_cache.encode ~spec (Jobs.measurements_exn w));
    check bool "measurements equal" true
      (Jobs.measurements_exn c = Jobs.measurements_exn w)
  | _ -> Alcotest.fail "expected one result each");
  check int "one hit" 1 (Result_cache.hits cache);
  check int "one miss" 1 (Result_cache.misses cache);
  (* decode . encode is the identity on the wire format too. *)
  let ms = Jobs.measurements_exn (List.hd warm) in
  (match Result_cache.decode (Result_cache.encode ~spec:(Jobs.spec j) ms) with
  | Ok ms' ->
    check Alcotest.string "decode(encode) round-trips"
      (Result_cache.encode ~spec:"x" ms)
      (Result_cache.encode ~spec:"x" ms')
  | Error e -> Alcotest.fail ("decode failed: " ^ e));
  (* A corrupt entry is a miss, not a crash. Entries live sharded under
     the first two hex digits of their key. *)
  let key = Jobs.key j in
  let shard = Filename.concat (Result_cache.dir cache) (String.sub key 0 2) in
  let path = Filename.concat shard (key ^ ".json") in
  check bool "entry stored in its shard" true (Sys.file_exists path);
  let oc = open_out path in
  output_string oc "{not json";
  close_out oc;
  check bool "corrupt entry ignored" true (Result_cache.lookup cache ~key = None)

(* Entries written by pre-shard versions sit flat at [<dir>/<key>.json];
   the first lookup must migrate them into their shard and serve the
   same bytes. *)
let test_cache_legacy_migration () =
  let dir = fresh_cache_dir () in
  let cache = Result_cache.create ~dir in
  let j = Jobs.job ~protocol:(Jobs.Noisy { runs = 2 }) bezier (Pipelines.Uu 2) in
  let cold = Jobs.run_all ~cache [ j ] in
  let key = Jobs.key j in
  let sharded =
    Filename.concat
      (Filename.concat dir (String.sub key 0 2))
      (key ^ ".json")
  in
  let legacy = Filename.concat dir (key ^ ".json") in
  (* Reconstruct the pre-shard layout: move the entry to the flat path. *)
  let bytes = In_channel.with_open_bin sharded In_channel.input_all in
  Sys.rename sharded legacy;
  let warm = Result_cache.create ~dir in
  (match Result_cache.lookup warm ~key with
  | Some ms ->
    check Alcotest.string "migrated bytes identical"
      bytes
      (Result_cache.encode ~spec:(Jobs.spec j) ms);
    check bool "cold bytes identical" true
      (match cold with
      | [ c ] ->
        bytes = Result_cache.encode ~spec:(Jobs.spec j) (Jobs.measurements_exn c)
      | _ -> false)
  | None -> Alcotest.fail "legacy entry not found");
  check bool "entry migrated into shard" true (Sys.file_exists sharded);
  check bool "flat entry gone" false (Sys.file_exists legacy);
  (* And raw lookups see the same migrated entry. *)
  check bool "raw lookup reads migrated entry" true
    (Result_cache.lookup_raw warm ~key = Some bytes)

let test_sweep_parallel_equals_serial () =
  let serial = Sweep.run ~apps:[ bezier ] ~jobs:1 () in
  let parallel = Sweep.run ~apps:[ bezier ] ~jobs:4 () in
  check int "same point count" (List.length serial.Sweep.points)
    (List.length parallel.Sweep.points);
  check bool "point-for-point identical" true (serial.Sweep.points = parallel.Sweep.points);
  check bool "same baselines" true (serial.Sweep.baselines = parallel.Sweep.baselines);
  check int "no failures" 0 (List.length parallel.Sweep.failures)

let test_config_round_trip () =
  List.iter
    (fun c ->
      check bool
        ("round-trips " ^ Pipelines.config_to_string c)
        true
        (Pipelines.config_of_string (Pipelines.config_to_string c) = Ok c))
    (Pipelines.all_standard
    @ [ Pipelines.Uu_heuristic_divergence; Pipelines.Uu_selective 4 ]);
  (* CLI aliases and inline factors. *)
  check bool "uu-4" true (Pipelines.config_of_string "uu-4" = Ok (Pipelines.Uu 4));
  check bool "unroll:8" true
    (Pipelines.config_of_string "unroll:8" = Ok (Pipelines.Unroll 8));
  check bool "heuristic" true
    (Pipelines.config_of_string "heuristic" = Ok Pipelines.Uu_heuristic);
  check bool "heuristic-div" true
    (Pipelines.config_of_string "heuristic-div" = Ok Pipelines.Uu_heuristic_divergence);
  check bool "uu-selective-4" true
    (Pipelines.config_of_string "uu-selective-4" = Ok (Pipelines.Uu_selective 4));
  check bool "default factor" true
    (Pipelines.config_of_string ~default_factor:8 "uu" = Ok (Pipelines.Uu 8));
  check bool "unknown rejected" true
    (match Pipelines.config_of_string "warp-speed" with Error _ -> true | Ok _ -> false)

let test_points_for_parsed_config () =
  let sweep = Sweep.run ~apps:[ bezier ] () in
  match Pipelines.config_of_string "uu-2" with
  | Ok config ->
    let via_parsed = Sweep.points_for sweep ~config () in
    let via_value = Sweep.points_for sweep ~config:(Pipelines.Uu 2) () in
    check bool "parsed config selects points" true (via_parsed <> []);
    check bool "same selection as the constructor" true (via_parsed = via_value)
  | Error e -> Alcotest.fail e

let suite =
  [
    ("map preserves order", `Quick, test_map_order);
    ("map uses multiple domains", `Quick, test_map_uses_domains);
    ("map_result captures exceptions", `Quick, test_map_result_captures);
    ("job keys", `Quick, test_job_keys);
    ("failure record with retry", `Quick, test_failure_record);
    ("cache round-trip", `Quick, test_cache_round_trip);
    ("cache legacy-entry migration", `Quick, test_cache_legacy_migration);
    ("parallel sweep = serial sweep", `Slow, test_sweep_parallel_equals_serial);
    ("config round-trip", `Quick, test_config_round_trip);
    ("points_for parsed config", `Slow, test_points_for_parsed_config);
  ]
