(* Tests for parallel intra-launch simulation: the chunked range mapper,
   the byte-identical sim_jobs contract (any shard width produces the
   serial metrics and final memory, both engines, every registry app),
   the inter-block write-overlap detector behind --check-races, and the
   simulator-semantics version's role in the result-cache key. *)

open Uu_support
open Uu_ir
open Uu_core
open Uu_benchmarks
open Uu_gpusim
open Uu_harness

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* A shard width that actually exercises the parallel path even on a
   single-core container (available_domains () = 1 there). *)
let wide = max 3 (Parallel.available_domains ())

(* --- Parallel.map_range ------------------------------------------- *)

let test_map_range () =
  let serial ~chunk n =
    let nchunks = (n + chunk - 1) / chunk in
    List.init nchunks (fun i -> (i * chunk, min n ((i + 1) * chunk)))
  in
  let f ~lo ~hi = (lo, hi) in
  List.iter
    (fun (jobs, chunk, n) ->
      check
        (Alcotest.list (Alcotest.pair int int))
        (Printf.sprintf "jobs:%d chunk:%d n:%d in range order" jobs chunk n)
        (serial ~chunk n)
        (Parallel.map_range ~jobs ~chunk ~n f))
    [ (1, 4, 10); (4, 4, 10); (4, 1, 7); (3, 5, 5); (4, 3, 0) ];
  (* Chunks partition the range exactly once. *)
  let covered = Array.make 100 0 in
  List.iter
    (fun ((lo : int), hi) ->
      for i = lo to hi - 1 do
        covered.(i) <- covered.(i) + 1
      done)
    (Parallel.map_range ~jobs:4 ~n:100 f);
  check bool "every index covered exactly once" true
    (Array.for_all (fun c -> c = 1) covered);
  check bool "negative n rejected" true
    (try
       ignore (Parallel.map_range ~n:(-1) f);
       false
     with Invalid_argument _ -> true);
  check bool "non-positive chunk rejected" true
    (try
       ignore (Parallel.map_range ~chunk:0 ~n:4 f);
       false
     with Invalid_argument _ -> true);
  (* A worker exception surfaces on the caller, range order first. *)
  check bool "exception propagates" true
    (try
       ignore
         (Parallel.map_range ~jobs:4 ~chunk:1 ~n:8 (fun ~lo ~hi:_ ->
              if lo = 5 then failwith "chunk-5" else lo));
       false
     with Failure m -> m = "chunk-5")

(* --- the byte-identical sim_jobs contract -------------------------- *)

let configs = [ Pipelines.Baseline; Pipelines.Uu 4; Pipelines.Uu_heuristic ]

(* Compile + simulate one app at one shard width, mirroring the harness
   protocol (fresh workload from the fixed seed, launches in schedule
   order, one decode cache per module). *)
let run_sharded ~sim_jobs engine (app : App.t) config =
  let m = Uu_frontend.Lower.compile ~name:app.App.name app.App.source in
  List.iter
    (fun f -> ignore (Pipelines.optimize ~targets:Pipelines.All_loops config f))
    m.Func.funcs;
  let instance = app.App.setup (Rng.create 0x5EEDL) in
  let total = Metrics.create () in
  let cache = Decode.create_cache () in
  List.iter
    (fun (l : App.launch) ->
      let f =
        match Func.find_func m l.App.kernel with
        | Some f -> f
        | None -> Alcotest.failf "%s: unknown kernel %s" app.App.name l.App.kernel
      in
      let r =
        Kernel.exec ~config:(Kernel.config ~engine ~decode_cache:cache ~sim_jobs ()) instance.App.mem f
          ~grid_dim:l.App.grid_dim ~block_dim:l.App.block_dim ~args:l.App.args
      in
      Metrics.add total r.Kernel.metrics)
    instance.App.launches;
  (total, Memory.dump instance.App.mem, instance.App.check ())

let same_memory a b =
  List.length a = List.length b
  && List.for_all2
       (fun (i, xs) (j, ys) ->
         i = j
         && Array.length xs = Array.length ys
         && Array.for_all2 Eval.equal xs ys)
       a b

let test_app_deterministic (app : App.t) () =
  List.iter
    (fun engine ->
      List.iter
        (fun config ->
          let name =
            Printf.sprintf "%s/%s/%s" app.App.name
              (match engine with
              | Kernel.Reference -> "reference"
              | Kernel.Decoded -> "decoded")
              (Pipelines.config_to_string config)
          in
          let ms, mems, checks = run_sharded ~sim_jobs:1 engine app config in
          check bool (name ^ " oracle passes serially") true (checks = Ok ());
          List.iter
            (fun jobs ->
              let mp, memp, checkp = run_sharded ~sim_jobs:jobs engine app config in
              if ms <> mp then
                Alcotest.failf
                  "%s: metrics diverge at sim_jobs %d@.serial: %s@.sharded: %s"
                  name jobs
                  (Format.asprintf "%a" Metrics.pp ms)
                  (Format.asprintf "%a" Metrics.pp mp);
              check bool
                (Printf.sprintf "%s memory identical at sim_jobs %d" name jobs)
                true (same_memory mems memp);
              check bool
                (Printf.sprintf "%s oracle passes at sim_jobs %d" name jobs)
                true (checkp = Ok ()))
            [ 2; wide ])
        configs)
    [ Kernel.Reference; Kernel.Decoded ]

(* The noise model must shard identically too: per-block jitter streams
   are a pure function of (launch, block), not of which domain runs the
   block. Timing-dependent fields (compile_seconds) are excluded. *)
let test_noisy_deterministic () =
  let app =
    match Registry.find "XSBench" with Some a -> a | None -> assert false
  in
  let serial = Runner.run_exn ~noise_seed:99L ~sim_jobs:1 app Pipelines.Uu_heuristic in
  let sharded =
    Runner.run_exn ~noise_seed:99L ~sim_jobs:wide app Pipelines.Uu_heuristic
  in
  check bool "noisy metrics identical" true
    (serial.Runner.metrics = sharded.Runner.metrics);
  check (Alcotest.float 0.0) "noisy kernel_ms identical" serial.Runner.kernel_ms
    sharded.Runner.kernel_ms

(* --- the race checker ---------------------------------------------- *)

(* Promote locals first: alloca arenas are shared-bank traffic too, and
   these tests pin the recorder's view of the declared arrays alone. *)
let launch_with_races ?(engine = Kernel.Decoded) ?(grid = 4) ?(block = 32)
    ?(sim_jobs = 8) src =
  let fn = Ir_helpers.compile_one src in
  ignore (Uu_opt.Pass.exec [ Uu_opt.Mem2reg.pass ] fn);
  let mem = Memory.create () in
  let out = Memory.zeros_f64 mem 512 in
  let races = Racecheck.create () in
  let r =
    Kernel.exec ~config:(Kernel.config ~engine ~races ~sim_jobs ()) mem fn ~grid_dim:grid ~block_dim:block
      ~args:[ Kernel.Buf out; Kernel.Int_arg 128L ]
  in
  (r, races)

let racy = "kernel k(float* restrict out, int n) { out[0] = 1.0; }"

let disjoint =
  {|kernel k(float* restrict out, int n) {
      int tid = threadIdx.x + blockIdx.x * blockDim.x;
      if (tid < n) { out[tid] = 1.0; }
    }|}

let test_racecheck () =
  List.iter
    (fun engine ->
      let _, races = launch_with_races ~engine racy in
      (match Racecheck.overlaps races with
      | [ o ] ->
        check int "overlap on offset 0" 0 o.Racecheck.offset;
        check int "all four blocks write it" 4 (List.length o.Racecheck.blocks)
      | os -> Alcotest.failf "expected one overlapping cell, got %d" (List.length os));
      let _, clean = launch_with_races ~engine disjoint in
      check bool "disjoint kernel has writes" true (Racecheck.writes clean > 0);
      check (Alcotest.list bool) "disjoint kernel has no overlaps" []
        (List.map (fun _ -> true) (Racecheck.overlaps clean)))
    [ Kernel.Reference; Kernel.Decoded ];
  (* The report names the overlap; a clean collector says so. *)
  let _, races = launch_with_races racy in
  check bool "report mentions the cell" true
    (Astring.String.is_infix ~affix:"offset 0" (Racecheck.report races))

(* A race-checked launch shards like any other; the per-shard collectors
   must never change the measurement. *)
let test_racecheck_preserves_metrics () =
  let fn = Ir_helpers.compile_one disjoint in
  let run ?races () =
    let mem = Memory.create () in
    let out = Memory.zeros_f64 mem 512 in
    (Kernel.exec ~config:{ Kernel.default_config with races; sim_jobs = 8 } mem fn ~grid_dim:4 ~block_dim:32
       ~args:[ Kernel.Buf out; Kernel.Int_arg 128L ])
      .Kernel.metrics
  in
  check bool "metrics unchanged under --check-races" true
    (run () = run ~races:(Racecheck.create ()) ())

(* --- the intra-block shared-memory race checker --------------------- *)

(* Every thread of a block stores to s[0] in the same barrier interval:
   one racy cell per block, 32 writers. *)
let shared_racy_writes =
  {|kernel k(float* restrict out, int n) {
      __shared__ float s[4];
      s[0] = 1.0;
      __syncthreads();
      int tid = threadIdx.x + blockIdx.x * blockDim.x;
      if (tid < n) { out[tid] = s[0]; }
    }|}

(* One writer, 31 readers of the same cell with no barrier between:
   a write/read race even though there is only one writer. *)
let shared_racy_read =
  {|kernel k(float* restrict out, int n) {
      __shared__ float s[32];
      int lid = threadIdx.x;
      if (lid == 0) { s[5] = 2.0; }
      float v = s[5];
      int tid = lid + blockIdx.x * blockDim.x;
      if (tid < n) { out[tid] = v; }
    }|}

(* The canonical fill/barrier/read idiom: per-lane cells, one barrier.
   Must be clean. *)
let shared_clean =
  {|kernel k(float* restrict out, int n) {
      __shared__ float s[32];
      int lid = threadIdx.x;
      s[lid] = 1.0;
      __syncthreads();
      int tid = lid + blockIdx.x * blockDim.x;
      if (tid < n) { out[tid] = s[lid]; }
    }|}

let test_shared_racecheck () =
  List.iter
    (fun engine ->
      let _, races = launch_with_races ~engine shared_racy_writes in
      (match Racecheck.shared_races races with
      | [] -> Alcotest.fail "32 same-epoch writers reported as race-free"
      | rs ->
        check int "one racy cell per block" 4 (List.length rs);
        let r = List.hd rs in
        check int "cell is offset 0" 0 r.Racecheck.s_offset;
        check int "epoch 0 (before the barrier)" 0 r.Racecheck.s_epoch;
        check int "all 32 writers named" 32 (List.length r.Racecheck.s_threads));
      let _, races = launch_with_races ~engine shared_racy_read in
      (match Racecheck.shared_races races with
      | [] -> Alcotest.fail "unsynchronised write/read reported as race-free"
      | r :: _ ->
        check int "racy cell is offset 5" 5 r.Racecheck.s_offset;
        check bool "writer and readers named" true
          (List.length r.Racecheck.s_threads = 32));
      let _, clean = launch_with_races ~engine shared_clean in
      check bool "clean kernel recorded accesses" true
        (Racecheck.shared_accesses clean > 0);
      check int "fill/barrier/read is race-free" 0
        (List.length (Racecheck.shared_races clean)))
    [ Kernel.Reference; Kernel.Decoded ];
  (* The report surfaces the shared section beside the global one. *)
  let _, races = launch_with_races shared_racy_writes in
  let report = Racecheck.report races in
  check bool "report names the racy interval" true
    (Astring.String.is_infix ~affix:"shared race check: 4 racy cell(s)" report);
  let _, clean = launch_with_races shared_clean in
  check bool "clean report says so" true
    (Astring.String.is_infix ~affix:"no intra-block conflicts"
       (Racecheck.report clean))

(* --- barrier intervals are block-global ----------------------------- *)

(* Lanes 0 and 32 write the same cell before the first barrier. They
   never co-execute an instruction (different warps), so only the
   block-global epoch the scheduler maintains — not a per-warp counter —
   puts the two writes in the same interval and flags the race. *)
let shared_cross_warp_racy =
  {|kernel k(float* restrict out, int n) {
      __shared__ float s[4];
      int lid = threadIdx.x;
      if (lid == 0) { s[0] = 1.0; }
      if (lid == 32) { s[0] = 2.0; }
      __syncthreads();
      int tid = lid + blockIdx.x * blockDim.x;
      if (tid < n) { out[tid] = s[0]; }
    }|}

(* The negative image: the write and the cross-warp read are separated
   by a barrier, so their epochs differ and the exchange is clean. *)
let shared_cross_warp_clean =
  {|kernel k(float* restrict out, int n) {
      __shared__ float s[64];
      int lid = threadIdx.x;
      s[lid] = 1.0;
      __syncthreads();
      int partner = lid + 32;
      if (partner > 63) { partner = partner - 64; }
      float v = s[partner];
      int tid = lid + blockIdx.x * blockDim.x;
      if (tid < n) { out[tid] = v; }
    }|}

let test_shared_epoch_block_global () =
  List.iter
    (fun engine ->
      let _, races =
        launch_with_races ~engine ~block:64 shared_cross_warp_racy
      in
      (match Racecheck.shared_races races with
      | [] -> Alcotest.fail "cross-warp same-interval writers missed"
      | rs ->
        check int "one racy cell per block" 4 (List.length rs);
        let r = List.hd rs in
        check int "racy cell is offset 0" 0 r.Racecheck.s_offset;
        check int "both writes land in interval 0" 0 r.Racecheck.s_epoch;
        check (Alcotest.list int) "lanes 0 and 32 named" [ 0; 32 ]
          r.Racecheck.s_threads);
      let _, clean =
        launch_with_races ~engine ~block:64 shared_cross_warp_clean
      in
      check bool "clean kernel recorded accesses" true
        (Racecheck.shared_accesses clean > 0);
      check int "barrier-separated cross-warp exchange is race-free" 0
        (List.length (Racecheck.shared_races clean)))
    [ Kernel.Reference; Kernel.Decoded ]

(* --- byte-identical reports and traces at any shard width ----------- *)

(* Global atomics from every block beside the per-block plain writes:
   the report gains an atomics line and every line must be identical at
   any width — atomic-only cells never overlap, and the per-shard
   collectors merge back to the serial bytes. *)
let atomic_mix =
  {|kernel k(float* restrict out, int n) {
      int tid = threadIdx.x + blockIdx.x * blockDim.x;
      float old = atomicAdd(&out[0], 1.0);
      if (tid + 1 < n) { out[tid + 1] = old * 0.0 + 1.0; }
    }|}

let test_report_bytes_deterministic () =
  List.iter
    (fun engine ->
      List.iter
        (fun src ->
          let _, serial = launch_with_races ~engine ~sim_jobs:1 src in
          let want = Racecheck.report serial in
          List.iter
            (fun sim_jobs ->
              let _, sharded = launch_with_races ~engine ~sim_jobs src in
              check Alcotest.string
                (Printf.sprintf "report bytes at sim_jobs %d" sim_jobs)
                want
                (Racecheck.report sharded))
            [ 2; 3 ])
        [ racy; shared_racy_writes; shared_clean; atomic_mix ])
    [ Kernel.Reference; Kernel.Decoded ];
  (* The atomics line is present exactly when atomics ran. *)
  let _, races = launch_with_races atomic_mix in
  check bool "atomics line present" true
    (Astring.String.is_infix ~affix:"committed in block order"
       (Racecheck.report races));
  check bool "atomic-only cell is not an overlap" true
    (Racecheck.overlaps races
    |> List.for_all (fun o -> o.Racecheck.offset <> 0))

(* Traced launches shard too: per-shard buffers spliced in block order
   must reproduce the serial stream byte for byte, including the cutoff
   of a small [limit]. *)
let run_traced ?(engine = Kernel.Decoded) ?limit ~sim_jobs src =
  let fn = Ir_helpers.compile_one src in
  ignore (Uu_opt.Pass.exec [ Uu_opt.Mem2reg.pass ] fn);
  let mem = Memory.create () in
  let out = Memory.zeros_f64 mem 512 in
  let tracer = Trace.create ?limit () in
  ignore
    (Kernel.exec ~config:(Kernel.config ~engine ~tracer ~sim_jobs ()) mem fn
       ~grid_dim:4 ~block_dim:32
       ~args:[ Kernel.Buf out; Kernel.Int_arg 128L ]);
  (Trace.render fn tracer, List.length (Trace.events tracer))

let test_trace_bytes_deterministic () =
  List.iter
    (fun engine ->
      List.iter
        (fun src ->
          let want, _ = run_traced ~engine ~sim_jobs:1 src in
          check bool "trace recorded" true (want <> "");
          List.iter
            (fun sim_jobs ->
              let got, _ = run_traced ~engine ~sim_jobs src in
              check Alcotest.string
                (Printf.sprintf "trace bytes at sim_jobs %d" sim_jobs)
                want got)
            [ 2; 3 ])
        [ disjoint; shared_racy_writes ])
    [ Kernel.Reference; Kernel.Decoded ];
  (* Truncation parity: a limit smaller than the stream cuts the sharded
     splice at exactly the serial prefix. *)
  let want, n = run_traced ~limit:10 ~sim_jobs:1 disjoint in
  check int "limit honoured" 10 n;
  List.iter
    (fun sim_jobs ->
      let got, _ = run_traced ~limit:10 ~sim_jobs disjoint in
      check Alcotest.string
        (Printf.sprintf "truncated trace bytes at sim_jobs %d" sim_jobs)
        want got)
    [ 2; 3 ]

(* Kernels with no shared memory must not grow a shared section: the
   global-only report is unchanged from the pre-shared simulator. *)
let test_shared_report_absent () =
  let _, races = launch_with_races disjoint in
  check int "no shared accesses recorded" 0 (Racecheck.shared_accesses races);
  check bool "no shared section in the report" true
    (not
       (Astring.String.is_infix ~affix:"shared race check"
          (Racecheck.report races)))

(* Every registry app honours CUDA's disjoint-writes contract — the
   assumption the parallel shard rests on, audited empirically. *)
let test_registry_race_audit () =
  List.iter
    (fun (app : App.t) ->
      let compiled = Runner.compile app Pipelines.Baseline in
      List.iter
        (fun (kernel, races) ->
          check bool
            (Printf.sprintf "%s/%s recorded writes" app.App.name kernel)
            true
            (Racecheck.writes races > 0);
          match Racecheck.overlaps races with
          | [] -> ()
          | os ->
            Alcotest.failf "%s/%s: %d cells written by multiple blocks"
              app.App.name kernel (List.length os))
        (Runner.race_audit compiled))
    Registry.all

(* --- cache invalidation on simulator-semantics bumps ---------------- *)

let bezier =
  match Registry.find "bezier-surface" with Some a -> a | None -> assert false

let test_sim_version_in_key () =
  (* Shared memory bumped the version past the pre-shared "2"; the
     barrier scheduler bumped it to "4"; deferred block-ordered atomics
     and bank-resident alloca arenas bumped it to "5" — cached entries
     measured under the old machines must never be served to the new
     simulator. *)
  check bool "semantics version covers deferred atomics and arenas" true
    (Kernel.semantics_version >= "5");
  let j = Jobs.job bezier Pipelines.Baseline in
  check bool "spec names the simulator version" true
    (Astring.String.is_infix
       ~affix:("sim=" ^ Kernel.semantics_version)
       (Jobs.spec j));
  check bool "sim version changes key" true
    (Jobs.key ~sim_version:"test-bump" j <> Jobs.key j);
  check bool "sim and pipeline bumps are distinct keys" true
    (Jobs.key ~sim_version:"test-bump" j <> Jobs.key ~version:"test-bump" j)

let test_sim_version_invalidates_cache () =
  let dir = Filename.temp_file "uu_simcache" "" in
  Sys.remove dir;
  let cache = Result_cache.create ~dir in
  let j = Jobs.job bezier Pipelines.Baseline in
  (match Jobs.run_all ~jobs:1 ~cache [ j ] with
  | [ r ] -> check bool "cold run executed" false r.Jobs.from_cache
  | _ -> Alcotest.fail "expected one result");
  check bool "current semantics hits" true
    (Result_cache.lookup cache ~key:(Jobs.key j) <> None);
  (* After a semantics bump the harness computes a different key, so the
     entry stored under the old machine is never served again. *)
  check bool "bumped semantics misses" true
    (Result_cache.lookup cache ~key:(Jobs.key ~sim_version:"next" j) = None)

let suite =
  [
    Alcotest.test_case "map_range" `Quick test_map_range;
    Alcotest.test_case "racecheck overlap detection" `Quick test_racecheck;
    Alcotest.test_case "shared racecheck" `Quick test_shared_racecheck;
    Alcotest.test_case "shared epochs are block-global" `Quick
      test_shared_epoch_block_global;
    Alcotest.test_case "shared report absent without shared memory" `Quick
      test_shared_report_absent;
    Alcotest.test_case "race report bytes shard-deterministic" `Quick
      test_report_bytes_deterministic;
    Alcotest.test_case "trace bytes shard-deterministic" `Quick
      test_trace_bytes_deterministic;
    Alcotest.test_case "racecheck preserves metrics" `Quick
      test_racecheck_preserves_metrics;
    Alcotest.test_case "noisy shard determinism" `Quick test_noisy_deterministic;
    Alcotest.test_case "sim version in key" `Quick test_sim_version_in_key;
    Alcotest.test_case "sim version invalidates cache" `Quick
      test_sim_version_invalidates_cache;
    Alcotest.test_case "registry race audit" `Slow test_registry_race_audit;
  ]
  @ List.map
      (fun (app : App.t) ->
        Alcotest.test_case ("shard determinism: " ^ app.App.name) `Slow
          (test_app_deterministic app))
      Registry.all
