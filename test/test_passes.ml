(* Unit tests for the midend passes: mem2reg, SCCP, instcombine, GVN,
   condition propagation, DCE, simplify-cfg, if-conversion, and the
   baseline full unroller. Each test checks both a structural property of
   the produced IR and (where cheap) semantic preservation by running the
   kernel on the simulator. *)

open Uu_ir
open Uu_opt

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let count pred fn =
  Func.fold_blocks
    (fun b acc -> acc + List.length (List.filter pred b.Block.instrs))
    fn 0

let count_phis fn =
  Func.fold_blocks (fun b acc -> acc + List.length b.Block.phis) fn 0

let is_alloca = function Instr.Alloca _ -> true | _ -> false
let is_load = function Instr.Load _ -> true | _ -> false
let is_select = function Instr.Select _ -> true | _ -> false
let is_div = function Instr.Binop { op = Instr.Sdiv | Instr.Udiv | Instr.Fdiv; _ } -> true | _ -> false
let is_sub = function Instr.Binop { op = Instr.Sub; _ } -> true | _ -> false
let is_cmp = function Instr.Cmp _ -> true | _ -> false

let run_pass p fn = ignore (Pass.exec [ p ] fn)

let test_mem2reg_promotes () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  int a = n + 1;
  int b = a * 2;
  if (b > 4) { a = b; }
  out[tid] = a + b;
}
|}
  in
  check bool "has allocas before" true (count is_alloca fn > 0);
  run_pass Mem2reg.pass fn;
  check int "no allocas after" 0 (count is_alloca fn);
  check int "no slot loads after" 0 (count is_load fn);
  check bool "phis placed for the conditional" true (count_phis fn > 0)

let test_mem2reg_semantics () =
  let src =
    {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  int a = 3;
  int i = 0;
  while (i < n) {
    if (i & 1) { a = a + tid; } else { a = a * 2; }
    i = i + 1;
  }
  out[tid] = a;
}
|}
  in
  let reference = Ir_helpers.run_kernel (Ir_helpers.compile_one src) [ 9L ] in
  let fn = Ir_helpers.compile_one src in
  run_pass Mem2reg.pass fn;
  let got = Ir_helpers.run_kernel fn [ 9L ] in
  check bool "mem2reg preserves results" true (got = reference)

let test_sccp_folds_branch () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out) {
  int x = 4;
  int y = 0;
  if (x > 2) { y = 10; } else { y = 20; }
  out[0] = y;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Sccp.pass; Simplify_cfg.pass ] fn);
  (* Everything folds to a single store of 10. *)
  check int "one block" 1 (List.length (Func.labels fn));
  let got = Ir_helpers.run_kernel ~elems:1 fn [] in
  check Alcotest.int64 "folded value" 10L got.(0)

let test_sccp_through_phi () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int c) {
  int y = 0;
  if (c > 0) { y = 7; } else { y = 7; }
  out[0] = y + 1;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Sccp.pass; Simplify_cfg.pass; Dce.pass ] fn);
  let got = Ir_helpers.run_kernel ~elems:1 fn [ 1L ] in
  check Alcotest.int64 "phi of equal constants folds" 8L got.(0)

let test_instcombine_addsub () =
  let fn = Ir_helpers.straight_line () in
  (* r = (x + y) - x  ==>  y *)
  run_pass Instcombine.pass fn;
  run_pass Dce.pass fn;
  check int "sub eliminated" 0 (count is_sub fn)

let test_instcombine_identities () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int x) {
  out[0] = (x * 1) + 0;
  out[1] = x - x;
  out[2] = x ^ x;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Instcombine.pass; Dce.pass ] fn);
  let muls = count (function Instr.Binop { op = Instr.Mul; _ } -> true | _ -> false) fn in
  check int "x*1 removed" 0 muls;
  check int "x-x removed" 0 (count is_sub fn);
  let got = Ir_helpers.run_kernel ~elems:3 fn [ 5L ] in
  check bool "identity values" true (got = [| 5L; 0L; 0L |])

let test_gvn_cse () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int x, int y) {
  out[0] = (x + y) * (x + y);
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Gvn.pass; Dce.pass ] fn);
  let adds = count (function Instr.Binop { op = Instr.Add; _ } -> true | _ -> false) fn in
  check int "duplicate add merged" 1 adds

let test_gvn_load_elimination () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, const int* restrict a, int i) {
  out[0] = a[i] + a[i];
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Gvn.pass; Dce.pass ] fn);
  check int "second load eliminated" 1 (count is_load fn)

let test_gvn_store_forwarding () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int v) {
  out[3] = v;
  out[0] = out[3];
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Gvn.pass; Dce.pass; Dce.dead_load_pass ] fn);
  check int "load forwarded from store" 0 (count is_load fn);
  let got = Ir_helpers.run_kernel ~elems:4 fn [ 42L ] in
  check Alcotest.int64 "forwarded value" 42L got.(0)

let test_gvn_store_kills () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int* a, int* b, int i) {
  int x = a[i];
  b[i] = 0;
  out[0] = x + a[i];
}
|}
  in
  (* a and b are NOT restrict here: the store through b may alias a, so
     the second load of a[i] must survive. *)
  ignore (Pass.exec [ Mem2reg.pass; Gvn.pass; Dce.pass ] fn);
  check int "aliasing store kills availability" 2 (count is_load fn)

let test_gvn_restrict_preserves () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, const int* restrict a, int* restrict b, int i) {
  int x = a[i];
  b[i] = 0;
  out[0] = x + a[i];
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Gvn.pass; Dce.pass ] fn);
  check int "restrict store does not kill" 1 (count is_load fn)

let test_gvn_sync_kills () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, const int* a, int i) {
  int x = a[i];
  __syncthreads();
  out[0] = x + a[i];
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Gvn.pass; Dce.pass ] fn);
  check int "barrier kills availability" 2 (count is_load fn)

let test_cond_prop_same_condition () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int x, int y) {
  int r = 0;
  if (x > y) {
    if (x > y) { r = 1; } else { r = 2; }
  }
  out[0] = r;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass; Cond_prop.pass; Simplify_cfg.pass; Dce.pass ] fn);
  check int "inner check folded" 1 (count is_cmp fn);
  let got = Ir_helpers.run_kernel ~elems:1 fn [ 5L; 3L ] in
  check Alcotest.int64 "value" 1L got.(0)

let test_cond_prop_implication () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int x, int y) {
  int r = 0;
  if (x > y) {
    if (x >= y) { r = 1; }
    if (x < y) { r = r + 10; }
    if (y < x) { r = r + 100; }
  }
  out[0] = r;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass; Cond_prop.pass; Simplify_cfg.pass; Dce.pass ] fn);
  check int "all implied checks folded" 1 (count is_cmp fn);
  let got = Ir_helpers.run_kernel ~elems:1 fn [ 5L; 3L ] in
  check Alcotest.int64 "value" 101L got.(0)

let test_cond_prop_negation () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int x, int y) {
  int r = 0;
  if (x > y) { r = 1; } else {
    if (x <= y) { r = 2; }
  }
  out[0] = r;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass; Cond_prop.pass; Simplify_cfg.pass; Dce.pass ] fn);
  check int "negated check folded" 1 (count is_cmp fn)

let test_cond_prop_float_nan_safe () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, float x, float y) {
  int r = 0;
  if (x == y) { r = 1; } else {
    if (x != y) { r = 2; }
  }
  out[0] = r;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass; Cond_prop.pass; Simplify_cfg.pass; Dce.pass ] fn);
  (* foeq false does NOT imply fone true (NaN): both compares survive. *)
  check int "unordered negation NOT folded" 2 (count is_cmp fn)

let test_dce_keeps_effects () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int x) {
  int dead = x * 1234;
  int dead2 = dead + 1;
  out[0] = x;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Dce.pass ] fn);
  check int "dead arithmetic removed" 0
    (count (function Instr.Binop _ -> true | _ -> false) fn);
  check int "store kept" 1 (count (function Instr.Store _ -> true | _ -> false) fn)

let test_dce_dead_phi_cycle () =
  let fn, _header = Ir_helpers.diamond_loop () in
  (* Remove the store so the whole loop computation becomes dead. *)
  Func.iter_blocks
    (fun b ->
      b.Block.instrs <-
        List.filter (function Instr.Store _ -> false | _ -> true) b.Block.instrs)
    fn;
  run_pass Dce.pass fn;
  (* The a-phi is dead; the induction phi survives (controls branches). *)
  check bool "dead phi removed" true (count_phis fn <= 1)

let test_simplify_cfg_folds () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out) {
  if (true) { out[0] = 1; } else { out[0] = 2; }
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass ] fn);
  check int "collapsed to one block" 1 (List.length (Func.labels fn))

let test_if_convert_diamond () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int x) {
  int r = 0;
  if (x > 0) { r = x * 2; } else { r = x - 7; }
  out[0] = r;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass; If_convert.pass; Simplify_cfg.pass ] fn);
  check int "one block after if-conversion" 1 (List.length (Func.labels fn));
  check int "one select" 1 (count is_select fn);
  let got = Ir_helpers.run_kernel ~elems:1 fn [ 5L ] in
  check Alcotest.int64 "true side" 10L got.(0);
  let got2 = Ir_helpers.run_kernel ~elems:1 fn [ -3L ] in
  check Alcotest.int64 "false side" (-10L) got2.(0)

let test_if_convert_skips_loads () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, const int* restrict a, int x) {
  int r = 0;
  if (x > 0) { r = a[x]; }
  out[0] = r;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass; If_convert.pass ] fn);
  (* The load must not be speculated: branch remains. *)
  check bool "branch kept" true (List.length (Func.labels fn) > 1);
  check int "no select" 0 (count is_select fn)

let test_if_convert_threshold () =
  let src =
    {|
kernel k(float* restrict out, float x) {
  float r = 0.0;
  if (x > 0.0) {
    r = x / 2.0 + x / 3.0 + x / 4.0 + x / 5.0;
  }
  out[0] = r;
}
|}
  in
  let fn = Ir_helpers.compile_one src in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass; If_convert.pass_with_threshold 4 ] fn);
  check bool "big side not converted at threshold 4" true (List.length (Func.labels fn) > 1);
  let fn2 = Ir_helpers.compile_one src in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass; If_convert.pass_with_threshold 40 ] fn2);
  check bool "converted at threshold 40" true (count is_select fn2 > 0)

let test_baseline_full_unroll () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int x) {
  int acc = 0;
  int i = 0;
  while (i < 4) {
    acc = acc + x;
    i = i + 1;
  }
  out[0] = acc;
}
|}
  in
  ignore
    (Pass.exec
       [ Mem2reg.pass; Instcombine.pass; Simplify_cfg.pass;
         Unroll.baseline_full_unroll (); Sccp.pass;
         Pass.fixpoint "cleanup" [ Simplify_cfg.pass; Cond_prop.pass; Instcombine.pass; Gvn.pass; Sccp.pass; Dce.pass ] ]
       fn);
  let loops = Uu_analysis.Loops.loops (Uu_analysis.Loops.analyze fn) in
  check int "loop gone or straightened" 0 (List.length loops);
  let got = Ir_helpers.run_kernel ~elems:1 fn [ 5L ] in
  check Alcotest.int64 "4 * x" 20L got.(0)

let test_baseline_unroll_respects_pragma () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int x) {
  int acc = 0;
  int i = 0;
  #pragma nounroll
  while (i < 4) {
    acc = acc + x;
    i = i + 1;
  }
  out[0] = acc;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Instcombine.pass; Simplify_cfg.pass; Unroll.baseline_full_unroll () ] fn);
  let loops = Uu_analysis.Loops.loops (Uu_analysis.Loops.analyze fn) in
  check int "pragma keeps the loop" 1 (List.length loops)

let test_licm_hoists () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int n, int a, int b) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + (a * b + 7);
    i = i + 1;
  }
  out[0] = acc;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass; Licm.pass ] fn);
  (* a*b+7 moved out: the loop blocks contain no multiply. *)
  let forest = Uu_analysis.Loops.analyze fn in
  let loop = List.hd (Uu_analysis.Loops.loops forest) in
  let muls_in_loop =
    Value.Label_set.fold
      (fun l acc ->
        acc
        + List.length
            (List.filter
               (function Instr.Binop { op = Instr.Mul; _ } -> true | _ -> false)
               (Func.block fn l).Block.instrs))
      loop.Uu_analysis.Loops.blocks 0
  in
  check int "invariant multiply hoisted" 0 muls_in_loop;
  let got = Ir_helpers.run_kernel ~elems:1 fn [ 6L; 3L; 4L ] in
  check Alcotest.int64 "semantics" (Int64.of_int (6 * ((3 * 4) + 7))) got.(0)

let test_licm_keeps_loads () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int* a, int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + a[0];
    a[0] = acc;
    i = i + 1;
  }
  out[0] = acc;
}
|}
  in
  ignore (Pass.exec [ Mem2reg.pass; Simplify_cfg.pass; Licm.pass ] fn);
  let forest = Uu_analysis.Loops.analyze fn in
  let loop = List.hd (Uu_analysis.Loops.loops forest) in
  let loads_in_loop =
    Value.Label_set.fold
      (fun l acc ->
        acc
        + List.length
            (List.filter
               (function Instr.Load _ -> true | _ -> false)
               (Func.block fn l).Block.instrs))
      loop.Uu_analysis.Loops.blocks 0
  in
  check bool "load not hoisted past the store" true (loads_in_loop >= 1)

let test_loop_utils_canonicalize () =
  let fn, header = Ir_helpers.diamond_loop () in
  (match Loop_utils.canonicalize fn header with
  | None -> Alcotest.fail "loop lost"
  | Some loop ->
    check bool "preheader exists" true (Uu_analysis.Loops.preheader fn loop <> None);
    List.iter
      (fun (_, s) ->
        let preds = Cfg.preds_of fn s in
        check bool "dedicated exit" true
          (List.for_all (fun p -> Value.Label_set.mem p loop.Uu_analysis.Loops.blocks) preds))
      loop.Uu_analysis.Loops.exits);
  Verifier.check_exn fn;
  Uu_analysis.Ssa_check.check_exn fn

let suite =
  [
    ("mem2reg promotes slots", `Quick, test_mem2reg_promotes);
    ("mem2reg preserves semantics", `Quick, test_mem2reg_semantics);
    ("sccp folds constant branch", `Quick, test_sccp_folds_branch);
    ("sccp meets equal phi constants", `Quick, test_sccp_through_phi);
    ("instcombine (a+b)-a", `Quick, test_instcombine_addsub);
    ("instcombine identities", `Quick, test_instcombine_identities);
    ("gvn CSE", `Quick, test_gvn_cse);
    ("gvn load elimination", `Quick, test_gvn_load_elimination);
    ("gvn store-to-load forwarding", `Quick, test_gvn_store_forwarding);
    ("gvn aliasing store kills", `Quick, test_gvn_store_kills);
    ("gvn restrict no-alias", `Quick, test_gvn_restrict_preserves);
    ("gvn barrier kills", `Quick, test_gvn_sync_kills);
    ("cond-prop same condition", `Quick, test_cond_prop_same_condition);
    ("cond-prop implication", `Quick, test_cond_prop_implication);
    ("cond-prop negation", `Quick, test_cond_prop_negation);
    ("cond-prop NaN-safe floats", `Quick, test_cond_prop_float_nan_safe);
    ("dce keeps effects", `Quick, test_dce_keeps_effects);
    ("dce removes dead phi cycles", `Quick, test_dce_dead_phi_cycle);
    ("simplify-cfg folds constants", `Quick, test_simplify_cfg_folds);
    ("if-convert diamond", `Quick, test_if_convert_diamond);
    ("if-convert never speculates loads", `Quick, test_if_convert_skips_loads);
    ("if-convert threshold", `Quick, test_if_convert_threshold);
    ("baseline full unroll", `Quick, test_baseline_full_unroll);
    ("baseline unroll respects pragma", `Quick, test_baseline_unroll_respects_pragma);
    ("licm hoists invariants", `Quick, test_licm_hoists);
    ("licm never hoists loads", `Quick, test_licm_keeps_loads);
    ("loop canonicalization", `Quick, test_loop_utils_canonicalize);
  ]
