(* Tests for the optimization-remark and pass-statistic subsystem: the
   u&u heuristic must explain every accept/reject with the computed
   (p, s, u) payload, and the counters must register the §V effects
   (load elimination after unmerging) on the paper's motivating app. *)

open Uu_support
open Uu_core

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* Same shape as the paper's Fig. 1 example: a loop whose body branches
   on a value unknown at compile time, so unmerging has paths to split. *)
let loop_src =
  {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  int acc = 0;
  int i = 0;
  while (i < n) {
    if ((i + tid) & 1) { acc = acc + i; } else { acc = acc - tid; }
    i = i + 1;
  }
  out[tid] = acc;
}
|}

(* Run only the heuristic pass (after canonicalization) and return its
   remark stream plus the statistic deltas of the run. *)
let heuristic_run params =
  let fn = Ir_helpers.compile_one loop_src in
  ignore (Uu_opt.Pass.exec ~options:Uu_opt.Pass.unverified Pipelines.early_passes fn);
  let sink = Remark.create () in
  let report =
    Uu_opt.Pass.exec
      ~options:(Uu_opt.Pass.options ~remarks:sink ())
      [ Uu.heuristic_pass params ] fn
  in
  (Remark.remarks sink, report.Uu_opt.Pass.stats)

let heuristic_decisions remarks =
  List.filter (fun (r : Remark.t) -> r.Remark.pass = "uu-heuristic") remarks

let has_psu r =
  Remark.int_arg r "p" <> None && Remark.int_arg r "s" <> None
  && Remark.int_arg r "u" <> None && Remark.int_arg r "c" <> None

let test_heuristic_applied_remark () =
  let remarks, stats = heuristic_run Uu.default_params in
  match heuristic_decisions remarks with
  | [ r ] ->
    check bool "accepted under the paper's defaults" true (r.Remark.kind = Remark.Applied);
    check bool "payload has p/s/u/c" true (has_psu r);
    check bool "located at the loop header" true (r.Remark.block <> None);
    check bool "chosen factor is at least 2" true
      (match Remark.int_arg r "u" with Some u -> u >= 2 | None -> false);
    check int "counted as accepted" 1
      (Option.value ~default:0 (List.assoc_opt "uu.heuristic_accepted" stats))
  | ds -> Alcotest.failf "expected exactly one heuristic decision, got %d" (List.length ds)

let test_heuristic_missed_remark () =
  (* A bound of 1 makes f(p,s,u) >= c for every factor: the loop must be
     rejected, and the remark must carry the numbers behind the decision. *)
  let remarks, stats = heuristic_run { Uu.default_params with Uu.c = 1 } in
  match heuristic_decisions remarks with
  | [ r ] ->
    check bool "rejected under c=1" true (r.Remark.kind = Remark.Missed);
    check bool "payload has p/s/u/c" true (has_psu r);
    check bool "p is the real path count" true
      (match Remark.int_arg r "p" with Some p -> p >= 2 | None -> false);
    check bool "s is the real loop size" true
      (match Remark.int_arg r "s" with Some s -> s > 0 | None -> false);
    check int "rejection counted" 1
      (Option.value ~default:0 (List.assoc_opt "uu.heuristic_rejected" stats));
    check bool "nothing transformed" true
      (List.assoc_opt "uu.loops_transformed" stats = None)
  | ds -> Alcotest.failf "expected exactly one heuristic decision, got %d" (List.length ds)

let test_rainflow_load_elimination () =
  (* §V: on rainflow, u&u turns merge-crossing memory reuse into
     straight-line reuse that GVN's load elimination can exploit. *)
  let app =
    match Uu_benchmarks.Registry.find "rainflow" with
    | Some a -> a
    | None -> Alcotest.fail "rainflow not registered"
  in
  let compiled = Uu_harness.Runner.compile app Pipelines.Uu_heuristic in
  let stats = Uu_harness.Runner.compiled_stats compiled in
  check bool "gvn.loads_eliminated > 0" true
    (match List.assoc_opt "gvn.loads_eliminated" stats with
    | Some n -> n > 0
    | None -> false);
  let remarks = Uu_harness.Runner.compiled_remarks compiled in
  check bool "compilation explains a u&u decision" true
    (heuristic_decisions remarks <> [])

let test_emit_without_sink () =
  (* Instrumentation must be free when nobody listens. *)
  check bool "disabled by default" false (Remark.enabled ());
  Remark.applied ~pass:"t" ~func:"f" "dropped";
  let sink = Remark.create () in
  Remark.with_sink sink (fun () ->
      check bool "enabled inside with_sink" true (Remark.enabled ());
      Remark.applied ~pass:"t" ~func:"f" "kept");
  check bool "disabled again after" false (Remark.enabled ());
  check int "only the scoped remark recorded" 1 (List.length (Remark.remarks sink))

let test_json_escaping () =
  let r : Remark.t =
    {
      Remark.kind = Remark.Missed;
      pass = "p";
      func = "f\"g\\h";
      block = Some 3;
      message = "line\nbreak";
      args = [ ("why", Remark.Str "a\tb") ];
    }
  in
  let json = Remark.to_json r in
  check bool "quotes escaped" true (Astring.String.is_infix ~affix:{|f\"g\\h|} json);
  check bool "newline escaped" true (Astring.String.is_infix ~affix:{|line\nbreak|} json)

let suite =
  [
    ("heuristic applied remark has p/s/u", `Quick, test_heuristic_applied_remark);
    ("heuristic missed remark has p/s/u", `Quick, test_heuristic_missed_remark);
    ("rainflow: gvn.loads_eliminated > 0", `Quick, test_rainflow_load_elimination);
    ("emit without a sink is a no-op", `Quick, test_emit_without_sink);
    ("remark JSON escapes specials", `Quick, test_json_escaping);
  ]
