(* The serve layer: Request/Response codecs (property-tested round
   trips), the wire protocol, config-string aliases, launch_config
   default compatibility, and the daemon end to end — including the
   in-flight dedupe contract (N identical concurrent requests, one
   execution). *)

open Uu_support
open Uu_serve

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* --- generators ----------------------------------------------------- *)

let configs =
  [
    Uu_core.Pipelines.Baseline;
    Uu_core.Pipelines.Unroll 4;
    Uu_core.Pipelines.Unmerge;
    Uu_core.Pipelines.Uu 2;
    Uu_core.Pipelines.Uu_heuristic;
    Uu_core.Pipelines.Uu_heuristic_divergence;
    Uu_core.Pipelines.Uu_selective 3;
  ]

let request_gen =
  let open QCheck2.Gen in
  let source_gen =
    oneof
      [
        map (fun n -> Request.App n) (oneofl [ "complex"; "rainflow"; "stencil1d" ]);
        map2
          (fun name text -> Request.Inline { name; text })
          string_printable string_printable;
      ]
  in
  let* mode = oneofl [ Request.Compile; Request.Run ] in
  let* source = source_gen in
  let* config = oneofl configs in
  let* loop = opt (int_bound 7) in
  let* grid_dim = int_range 1 512 in
  let* block_dim = int_range 1 256 in
  let* elems = int_range 1 65536 in
  let* check_races = bool in
  let* trace = bool in
  let* noise_seed = opt (map Int64.of_int int) in
  let* engine = oneofl [ Uu_gpusim.Kernel.Decoded; Uu_gpusim.Kernel.Reference ] in
  let* sim_jobs = opt (int_range 1 16) in
  return
    {
      Request.mode;
      source;
      config;
      loop;
      grid_dim;
      block_dim;
      elems;
      check_races;
      trace;
      noise_seed;
      engine;
      sim_jobs;
    }

let metrics_gen =
  let open QCheck2.Gen in
  let* cycles = nat in
  let* warp_instrs = nat in
  let* gld_bytes = nat in
  let* divergent_branches = nat in
  return
    (let m = Uu_gpusim.Metrics.create () in
     m.Uu_gpusim.Metrics.cycles <- cycles;
     m.Uu_gpusim.Metrics.warp_instrs <- warp_instrs;
     m.Uu_gpusim.Metrics.gld_bytes <- gld_bytes;
     m.Uu_gpusim.Metrics.divergent_branches <- divergent_branches;
     m)

let measurement_gen =
  let open QCheck2.Gen in
  let* label = string_printable in
  let* kernel_cycles = float_range (-1e15) 1e15 in
  let* code_bytes = nat in
  let* metrics = metrics_gen in
  let* races = opt string_printable in
  let* trace = opt string_printable in
  return { Response.label; kernel_cycles; code_bytes; metrics; races; trace }

let response_gen =
  let open QCheck2.Gen in
  let ok_gen =
    let* config = oneofl configs in
    let* body =
      oneof
        [
          map2
            (fun ir instr_count -> Response.Compiled { ir; instr_count })
            string_printable nat;
          map (fun ms -> Response.Measured ms) (list_size (int_bound 4) measurement_gen);
        ]
    in
    let* compile_seconds = float_range 0.0 1e6 in
    let* stats =
      list_size (int_bound 4) (pair (oneofl [ "a.b"; "c.d"; "e" ]) nat)
    in
    return (Ok { Response.config; body; compile_seconds; remarks = []; stats })
  in
  oneof [ ok_gen; map (fun m -> Error m) string_printable ]

let client_msg_gen =
  let open QCheck2.Gen in
  oneof
    [
      map2 (fun id request -> Protocol.Request { id; request }) nat request_gen;
      oneofl [ Protocol.Stats; Protocol.Ping; Protocol.Shutdown ];
    ]

let server_msg_gen =
  let open QCheck2.Gen in
  oneof
    [
      map3
        (fun version pipelines semantics ->
          Protocol.Hello { version; pipelines; semantics })
        string_printable string_printable string_printable;
      (let* id = nat in
       let* served = oneofl [ Protocol.Executed; Protocol.Cache; Protocol.Joined ] in
       let* response = response_gen in
       return (Protocol.Result { id; served; response }));
      map
        (fun stats -> Protocol.Stats_reply stats)
        (list_size (int_bound 4) (pair (oneofl [ "x"; "y.z" ]) nat));
      oneofl [ Protocol.Pong; Protocol.Bye ];
      map3
        (fun id queued limit -> Protocol.Busy { id; queued; limit })
        nat nat nat;
      map2
        (fun id message -> Protocol.Error_msg { id; message })
        (opt nat) string_printable;
    ]

let props =
  [
    QCheck2.Test.make ~name:"Request JSON round-trips" ~count:300 request_gen
      (fun r -> Request.of_json (Request.to_json r) = Ok r);
    QCheck2.Test.make ~name:"Request JSON round-trips through text" ~count:300
      request_gen (fun r ->
        match Json.of_string (Json.to_string (Request.to_json r)) with
        | Ok j -> Request.of_json j = Ok r
        | Error _ -> false);
    QCheck2.Test.make ~name:"Response JSON round-trips" ~count:300 response_gen
      (fun r -> Response.of_string (Response.to_string r) = Ok r);
    QCheck2.Test.make ~name:"Response serialization is stable (cache bytes)"
      ~count:300 response_gen (fun r ->
        match Response.of_string (Response.to_string r) with
        | Ok r' -> Response.to_string r' = Response.to_string r
        | Error _ -> false);
    QCheck2.Test.make ~name:"client frames round-trip" ~count:300 client_msg_gen
      (fun m -> Protocol.client_of_json (Protocol.client_to_json m) = Ok m);
    QCheck2.Test.make ~name:"server frames round-trip" ~count:300 server_msg_gen
      (fun m -> Protocol.server_of_json (Protocol.server_to_json m) = Ok m);
    (* The incremental codec must reassemble any frame stream however the
       transport slices it: random frames, random chunk sizes. *)
    QCheck2.Test.make ~name:"codec decodes frames under arbitrary chunking"
      ~count:100
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 4) server_msg_gen)
          (list_size (int_range 1 64) (int_range 1 13)))
      (fun (msgs, chunks) ->
        let stream =
          String.concat ""
            (List.map (fun m -> Protocol.encode_frame (Protocol.server_to_json m)) msgs)
        in
        let codec = Protocol.Codec.create () in
        let decoded = ref [] in
        let drain () =
          let rec go () =
            match Protocol.Codec.next codec with
            | Some j -> decoded := j :: !decoded; go ()
            | None -> ()
          in
          go ()
        in
        let pos = ref 0 in
        let chunk_sizes = ref chunks in
        while !pos < String.length stream do
          let size =
            match !chunk_sizes with
            | s :: rest -> chunk_sizes := rest; s
            | [] -> 1
          in
          let len = min size (String.length stream - !pos) in
          Protocol.Codec.feed codec stream ~off:!pos ~len;
          drain ();
          pos := !pos + len
        done;
        Protocol.Codec.buffered codec = 0
        && List.map Json.to_string (List.rev !decoded)
           = List.map (fun m -> Json.to_string (Protocol.server_to_json m)) msgs);
    QCheck2.Test.make ~name:"engine and sim_jobs never enter the request key"
      ~count:100 request_gen (fun r ->
        let flip = function
          | Uu_gpusim.Kernel.Decoded -> Uu_gpusim.Kernel.Reference
          | Uu_gpusim.Kernel.Reference -> Uu_gpusim.Kernel.Decoded
        in
        Request.key { r with Request.engine = flip r.engine; sim_jobs = Some 13 }
        = Request.key r);
  ]

(* --- framing over a real channel ------------------------------------ *)

let test_frame_io () =
  let path = Filename.temp_file "uu-serve-frames" ".bin" in
  let msgs =
    [
      Json.Obj [ ("op", Json.Str "ping") ];
      Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Str "x\"y\n" ];
      Json.Str (String.make 100_000 'z');
    ]
  in
  let oc = open_out_bin path in
  List.iter (Protocol.write_frame oc) msgs;
  close_out oc;
  let ic = open_in_bin path in
  List.iter
    (fun expect ->
      match Protocol.read_frame ic with
      | Some got -> check string "frame" (Json.to_string expect) (Json.to_string got)
      | None -> Alcotest.fail "unexpected EOF")
    msgs;
  check bool "clean EOF" true (Protocol.read_frame ic = None);
  close_in ic;
  Sys.remove path

(* --- the incremental codec ------------------------------------------ *)

(* Two frames split into exactly two reads at every possible offset —
   including inside the first frame's 4-byte length prefix and on the
   frame boundary — must decode identically to one contiguous read. *)
let test_codec_every_split () =
  let msgs =
    [
      Json.Obj [ ("op", Json.Str "ping") ];
      Json.Arr [ Json.Int 7; Json.Str (String.make 300 'q') ];
    ]
  in
  let expect = List.map Json.to_string msgs in
  let stream = String.concat "" (List.map Protocol.encode_frame msgs) in
  for split = 0 to String.length stream do
    let codec = Protocol.Codec.create () in
    let decoded = ref [] in
    let drain () =
      let rec go () =
        match Protocol.Codec.next codec with
        | Some j -> decoded := Json.to_string j :: !decoded; go ()
        | None -> ()
      in
      go ()
    in
    Protocol.Codec.feed codec stream ~off:0 ~len:split;
    drain ();
    Protocol.Codec.feed codec stream ~off:split ~len:(String.length stream - split);
    drain ();
    check bool (Printf.sprintf "all frames decoded at split %d" split) true
      (List.rev !decoded = expect);
    check int (Printf.sprintf "nothing left buffered at split %d" split) 0
      (Protocol.Codec.buffered codec)
  done

(* An oversized length prefix must be rejected as soon as the header is
   complete — before any body bytes accumulate. *)
let test_codec_oversized () =
  let header n =
    let b = Bytes.create 4 in
    Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
    Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
    Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
    Bytes.set_uint8 b 3 (n land 0xff);
    Bytes.to_string b
  in
  let codec = Protocol.Codec.create () in
  (* three header bytes: not yet decidable *)
  Protocol.Codec.feed codec (header (Protocol.max_frame + 1)) ~off:0 ~len:3;
  check bool "incomplete header yields no frame" true
    (Protocol.Codec.next codec = None);
  (* the fourth byte completes an oversized header *)
  Protocol.Codec.feed codec (header (Protocol.max_frame + 1)) ~off:3 ~len:1;
  (match Protocol.Codec.next codec with
  | exception Protocol.Protocol_error _ -> ()
  | _ -> Alcotest.fail "oversized header was not rejected");
  (* and a bad feed slice is the caller's bug, not silent corruption *)
  (match Protocol.Codec.feed (Protocol.Codec.create ()) "abc" ~off:2 ~len:5 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-bounds feed slice accepted")

(* --- TCP endpoint parsing ------------------------------------------- *)

let test_parse_tcp () =
  List.iter
    (fun (spec, expect) ->
      check bool (Printf.sprintf "parse %s" spec) true
        (Protocol.parse_tcp spec = expect))
    [
      ("127.0.0.1:7070", Ok ("127.0.0.1", 7070));
      (":7070", Ok ("127.0.0.1", 7070));
      ("localhost:0", Ok ("localhost", 0));
      ("nope", Error "nope: expected HOST:PORT");
    ];
  check bool "port out of range rejected" true
    (match Protocol.parse_tcp "h:70000" with Error _ -> true | Ok _ -> false);
  check bool "non-numeric port rejected" true
    (match Protocol.parse_tcp "h:x" with Error _ -> true | Ok _ -> false)

(* --- config-string aliases ------------------------------------------ *)

let test_config_aliases () =
  let open Uu_core.Pipelines in
  List.iter
    (fun (s, expect) ->
      match config_of_string s with
      | Ok got ->
        check bool (Printf.sprintf "alias %s" s) true (got = expect)
      | Error m -> Alcotest.fail (Printf.sprintf "alias %s rejected: %s" s m))
    [
      ("baseline", Baseline);
      ("unmerge", Unmerge);
      ("heuristic", Uu_heuristic);
      ("u&u-heuristic", Uu_heuristic);
      ("uu-heuristic", Uu_heuristic);
      ("heuristic-div", Uu_heuristic_divergence);
      ("u&u-heuristic+div", Uu_heuristic_divergence);
      ("uu-heuristic-div", Uu_heuristic_divergence);
      ("unroll", Unroll 2);
      ("unroll-8", Unroll 8);
      ("unroll:8", Unroll 8);
      ("uu", Uu 2);
      ("uu-4", Uu 4);
      ("u&u-4", Uu 4);
      ("u&u:4", Uu 4);
      ("uu-selective-3", Uu_selective 3);
      ("u&u-selective:5", Uu_selective 5);
    ];
  (* and the canonical names always parse back to themselves *)
  List.iter
    (fun c ->
      check bool
        (Printf.sprintf "round-trip %s" (config_to_string c))
        true
        (config_of_string (config_to_string c) = Ok c))
    configs

(* --- launch_config defaults ------------------------------------------ *)

let test_launch_defaults () =
  let fn =
    Ir_helpers.compile_one
      "kernel k(float* restrict out, int n) { int i = blockIdx.x * blockDim.x \
       + threadIdx.x; if (i < n) { out[i] = i * 2.0; } }"
  in
  let run exec_it =
    let mem = Uu_gpusim.Memory.create () in
    let out = Uu_gpusim.Memory.zeros_f64 mem 256 in
    let r =
      exec_it mem ~args:[ Uu_gpusim.Kernel.Buf out; Uu_gpusim.Kernel.Int_arg 200L ]
    in
    (r, Uu_gpusim.Memory.read_f64 out)
  in
  (* exec with no config and exec with the builder's empty config are the
     same launch; the builder with no arguments is the default record. *)
  let r_plain, mem_plain =
    run (fun mem ~args ->
        Uu_gpusim.Kernel.exec mem fn ~grid_dim:2 ~block_dim:128 ~args)
  in
  let r_built, mem_built =
    run (fun mem ~args ->
        Uu_gpusim.Kernel.exec
          ~config:(Uu_gpusim.Kernel.config ())
          mem fn ~grid_dim:2 ~block_dim:128 ~args)
  in
  check bool "metrics identical" true
    (r_plain.Uu_gpusim.Kernel.metrics = r_built.Uu_gpusim.Kernel.metrics);
  check bool "cycles identical" true
    (r_plain.Uu_gpusim.Kernel.kernel_cycles
    = r_built.Uu_gpusim.Kernel.kernel_cycles);
  check int "code bytes identical" r_plain.Uu_gpusim.Kernel.code_bytes
    r_built.Uu_gpusim.Kernel.code_bytes;
  check bool "memory identical" true (mem_plain = mem_built);
  check bool "config () = default_config" true
    (Uu_gpusim.Kernel.config () = Uu_gpusim.Kernel.default_config)

(* --- noise-seed delegation ------------------------------------------ *)

let test_noise_seed () =
  check bool "Jobs delegates to Request" true
    (Uu_harness.Jobs.noise_seed ~key:"abcdef" 3
    = Request.noise_seed ~key:"abcdef" 3);
  check bool "distinct runs, distinct seeds" true
    (Request.noise_seed ~key:"abcdef" 0 <> Request.noise_seed ~key:"abcdef" 1);
  check bool "distinct keys, distinct seeds" true
    (Request.noise_seed ~key:"abcdef" 0 <> Request.noise_seed ~key:"abcdeg" 0)

(* --- the daemon end to end ------------------------------------------ *)

let fresh_paths tag =
  let tmp = Filename.get_temp_dir_name () in
  let stamp = Printf.sprintf "%s-%d-%d" tag (Unix.getpid ()) (Random.bits ()) in
  ( Filename.concat tmp (Printf.sprintf "uu-%s.sock" stamp),
    Filename.concat tmp (Printf.sprintf "uu-%s.cache" stamp) )

let with_server tag f =
  let socket, cache_dir = fresh_paths tag in
  let server = Uu_harness.Server.create ~socket ~domains:1 ~cache_dir () in
  let th = Thread.create Uu_harness.Server.serve_forever server in
  Fun.protect
    ~finally:(fun () ->
      Uu_harness.Server.request_stop server;
      Thread.join th)
    (fun () -> f ~socket ~server)

let test_end_to_end () =
  with_server "e2e" (fun ~socket ~server:_ ->
      let r =
        Request.make ~grid_dim:16 ~block_dim:32 ~elems:256 ~check_races:true
          (Request.App "complex") (Uu_core.Pipelines.Uu 2)
      in
      let local = Uu_harness.Runner.run_request r in
      let client = Client.connect ~socket () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let _, pipelines, semantics = Client.hello client in
          check string "hello pipelines" Uu_core.Pipelines.version pipelines;
          check string "hello semantics" Uu_gpusim.Kernel.semantics_version
            semantics;
          Client.ping client;
          let served1, resp1 = Client.request client r in
          let served2, resp2 = Client.request client r in
          check bool "first executed" true (served1 = Protocol.Executed);
          check bool "second cache-served" true (served2 = Protocol.Cache);
          check string "daemon response = local run_request"
            (Response.to_string local)
            (Response.to_string resp1);
          check string "cache-served bytes identical"
            (Response.to_string resp1)
            (Response.to_string resp2);
          check string "rendered bytes match too" (Response.render local)
            (Response.render resp1);
          (* a broken request comes back as a response, not a dead socket *)
          let bad =
            Request.make
              (Request.Inline { name = "bad.cu"; text = "kernel oops(" })
              Uu_core.Pipelines.Baseline
          in
          let _, bad_resp = Client.request client bad in
          check bool "parse failure is an Error response" true
            (match bad_resp with Error _ -> true | Ok _ -> false)))

let test_inflight_dedupe () =
  with_server "dedupe" (fun ~socket ~server ->
      (* A request slow enough that all clients pile in while it runs. *)
      let r =
        Request.make ~grid_dim:64 ~block_dim:32 ~elems:2048
          (Request.App "bezier-surface") (Uu_core.Pipelines.Uu 4)
      in
      let n = 6 in
      let results = Array.make n (Protocol.Executed, "") in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun i ->
                let c = Client.connect ~socket () in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    let served, resp = Client.request c r in
                    results.(i) <- (served, Response.to_string resp)))
              i)
      in
      List.iter Thread.join threads;
      let stats = Uu_harness.Server.stats server in
      let stat name = List.assoc name stats in
      check int "one execution for N identical requests" 1 (stat "serve.executed");
      check int "all requests accounted" n (stat "serve.requests");
      check int "no errors" 0 (stat "serve.errors");
      let _, expect = results.(0) in
      Array.iteri
        (fun i (_, text) ->
          check string (Printf.sprintf "client %d got identical bytes" i) expect text)
        results;
      let executed, joined, cache =
        Array.fold_left
          (fun (e, j, c) (s, _) ->
            match s with
            | Protocol.Executed -> (e + 1, j, c)
            | Protocol.Joined -> (e, j + 1, c)
            | Protocol.Cache -> (e, j, c + 1))
          (0, 0, 0) results
      in
      check int "one client saw its request execute" 1 executed;
      check int "the rest joined in flight or hit the cache" (n - 1)
        (joined + cache))

(* The same daemon is reachable over TCP: bind port 0 (kernel picks),
   read the bound port back, and get the same bytes a local
   run_request produces. *)
let test_tcp_end_to_end () =
  let socket, cache_dir = fresh_paths "tcp" in
  let server =
    Uu_harness.Server.create ~socket ~tcp:("127.0.0.1", 0) ~domains:1 ~cache_dir ()
  in
  let th = Thread.create Uu_harness.Server.serve_forever server in
  Fun.protect
    ~finally:(fun () ->
      Uu_harness.Server.request_stop server;
      Thread.join th)
    (fun () ->
      let host, port =
        match Uu_harness.Server.tcp server with
        | Some endpoint -> endpoint
        | None -> Alcotest.fail "no TCP endpoint bound"
      in
      check bool "kernel assigned a real port" true (port > 0);
      let r =
        Request.make ~grid_dim:16 ~block_dim:32 ~elems:2048
          (Request.App "stencil1d") Uu_core.Pipelines.Baseline
      in
      let local = Uu_harness.Runner.run_request r in
      let client = Client.connect ~tcp:(host, port) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let served, resp = Client.request client r in
          check bool "executed" true (served = Protocol.Executed);
          check string "tcp response = local run_request"
            (Response.to_string local)
            (Response.to_string resp);
          (* and the unix listener serves the same daemon: this repeat
             must be cache-served with identical bytes *)
          let unix_client = Client.connect ~socket () in
          Fun.protect
            ~finally:(fun () -> Client.close unix_client)
            (fun () ->
              let served2, resp2 = Client.request unix_client r in
              check bool "cache-served over unix" true
                (served2 = Protocol.Cache);
              check string "same bytes over both transports"
                (Response.to_string resp)
                (Response.to_string resp2))))

(* Overload: one running slot, zero queue slots. Concurrent distinct
   requests must either execute or be shed with a busy frame — no
   errors, no hangs — and every survivor's bytes must match a local
   run. *)
let test_overload_shed () =
  let socket, cache_dir = fresh_paths "shed" in
  let server =
    Uu_harness.Server.create ~socket ~domains:1 ~cache_dir ~max_running:1
      ~max_queued:0 ()
  in
  let th = Thread.create Uu_harness.Server.serve_forever server in
  Fun.protect
    ~finally:(fun () ->
      Uu_harness.Server.request_stop server;
      Thread.join th)
    (fun () ->
      (* Distinct keys (different grids), one shared compile identity:
         cold compilation makes the first request slow enough for the
         rest to arrive while it runs. *)
      let requests =
        List.map
          (fun grid ->
            Request.make ~grid_dim:grid ~block_dim:32 ~elems:2048
              (Request.App "bezier-surface") (Uu_core.Pipelines.Uu 4))
          [ 16; 24; 32; 48; 64 ]
      in
      let n = List.length requests in
      let outcomes = Array.make n `Pending in
      let threads =
        List.mapi
          (fun i r ->
            Thread.create
              (fun () ->
                let c = Client.connect ~socket () in
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    match Client.request c r with
                    | _, resp -> outcomes.(i) <- `Served (Response.to_string resp)
                    | exception Client.Busy _ -> outcomes.(i) <- `Shed))
              ())
          requests
      in
      List.iter Thread.join threads;
      let served, shed =
        Array.fold_left
          (fun (sv, sh) -> function
            | `Served _ -> (sv + 1, sh)
            | `Shed -> (sv, sh + 1)
            | `Pending -> (sv, sh))
          (0, 0) outcomes
      in
      check int "every request either served or shed" n (served + shed);
      check bool "at least one served" true (served >= 1);
      check bool "at least one shed" true (shed >= 1);
      let stats = Uu_harness.Server.stats server in
      check int "shed counted" shed (List.assoc "serve.shed" stats);
      check int "no errors" 0 (List.assoc "serve.errors" stats);
      (* survivors carry exactly the bytes a one-shot run produces *)
      List.iteri
        (fun i r ->
          match outcomes.(i) with
          | `Served text ->
            check string
              (Printf.sprintf "survivor %d byte-identical to run_request" i)
              (Response.to_string (Uu_harness.Runner.run_request r))
              text
          | `Shed | `Pending -> ())
        requests)

(* Pipelining: one connection writes N request frames back-to-back
   before reading anything. The reactor must decode them all from the
   buffered stream and answer each; replies arrive in admission order
   with the client's frame ids. *)
let test_pipelined_requests () =
  with_server "pipeline" (fun ~socket ~server:_ ->
      let r =
        Request.make ~grid_dim:16 ~block_dim:32 ~elems:2048
          (Request.App "stencil1d") Uu_core.Pipelines.Baseline
      in
      let local = Response.to_string (Uu_harness.Runner.run_request r) in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket);
          (match Protocol.read_server ic with
          | Some (Protocol.Hello _) -> ()
          | _ -> Alcotest.fail "expected hello");
          let n = 5 in
          for id = 0 to n - 1 do
            output_string oc
              (Protocol.encode_frame
                 (Protocol.client_to_json (Protocol.Request { id; request = r })))
          done;
          flush oc;
          for expect_id = 0 to n - 1 do
            match Protocol.read_server ic with
            | Some (Protocol.Result { id; response; _ }) ->
              check int "replies in request order" expect_id id;
              check string "pipelined bytes identical" local
                (Response.to_string response)
            | _ -> Alcotest.fail "expected a result frame"
          done))

(* Shutdown must drain: a request admitted before the shutdown op still
   gets its full response, and the daemon exits afterwards. *)
let test_drain_shutdown () =
  let socket, cache_dir = fresh_paths "drain" in
  let server = Uu_harness.Server.create ~socket ~domains:1 ~cache_dir () in
  let th = Thread.create Uu_harness.Server.serve_forever server in
  let r =
    Request.make ~grid_dim:64 ~block_dim:32 ~elems:2048
      (Request.App "bezier-surface") (Uu_core.Pipelines.Uu 4)
  in
  let result = ref None in
  let requester =
    Thread.create
      (fun () ->
        let c = Client.connect ~socket () in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> result := Some (Client.request c r)))
      ()
  in
  (* let the slow request get admitted, then ask for shutdown *)
  Thread.delay 0.3;
  let ctl = Client.connect ~socket () in
  Client.shutdown ctl;
  Client.close ctl;
  Thread.join requester;
  Thread.join th;
  (match !result with
  | Some (_, resp) ->
    check string "in-flight response delivered across shutdown"
      (Response.to_string (Uu_harness.Runner.run_request r))
      (Response.to_string resp)
  | None -> Alcotest.fail "request thread got no response");
  check bool "socket file removed" false (Sys.file_exists socket)

let suite =
  List.map (QCheck_alcotest.to_alcotest ~long:false) props
  @ [
      ("frame io over a channel", `Quick, test_frame_io);
      ("codec survives every split offset", `Quick, test_codec_every_split);
      ("codec rejects oversized frames", `Quick, test_codec_oversized);
      ("tcp endpoint parsing", `Quick, test_parse_tcp);
      ("config_of_string aliases", `Quick, test_config_aliases);
      ("launch_config defaults", `Quick, test_launch_defaults);
      ("noise-seed delegation", `Quick, test_noise_seed);
      ("daemon end to end", `Quick, test_end_to_end);
      ("in-flight dedupe: N requests, one execution", `Quick, test_inflight_dedupe);
      ("daemon over tcp", `Quick, test_tcp_end_to_end);
      ("overload sheds with busy frames", `Quick, test_overload_shed);
      ("pipelined requests on one connection", `Quick, test_pipelined_requests);
      ("shutdown drains in-flight work", `Quick, test_drain_shutdown);
    ]
