(* Tests for the paper's transforms: loop unrolling, control-flow
   unmerging, combined u&u, the heuristic, and the five pipelines. *)

open Uu_ir
open Uu_core

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let first_loop fn =
  ignore (Uu_opt.Pass.exec ~options:Uu_opt.Pass.unverified Pipelines.early_passes fn);
  let forest = Uu_analysis.Loops.analyze fn in
  (List.hd (Uu_analysis.Loops.loops forest)).Uu_analysis.Loops.header

let counted_loop_src =
  {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  int acc = 0;
  int i = 0;
  while (i < n) {
    if ((i + tid) & 1) { acc = acc + i; } else { acc = acc - tid; }
    i = i + 1;
  }
  out[tid] = acc;
}
|}

let run_both ~transform src scalars =
  let reference = Ir_helpers.run_kernel (Ir_helpers.compile_one src) scalars in
  let fn = Ir_helpers.compile_one src in
  let header = first_loop fn in
  transform fn header;
  Verifier.check_exn fn;
  Uu_analysis.Ssa_check.check_exn fn;
  let got = Ir_helpers.run_kernel fn scalars in
  check bool "semantics preserved" true (got = reference);
  fn

let test_unroll_semantics () =
  List.iter
    (fun factor ->
      ignore
        (run_both counted_loop_src [ 13L ] ~transform:(fun fn header ->
             check bool "unroll applied" true
               (Uu_opt.Unroll.unroll_loop fn ~header ~factor))))
    [ 2; 3; 4; 8 ]

let test_unroll_structure () =
  let fn = Ir_helpers.compile_one counted_loop_src in
  let header = first_loop fn in
  let blocks_before = List.length (Func.labels fn) in
  ignore (Uu_opt.Unroll.unroll_loop fn ~header ~factor:2 );
  (* The loop body (5 blocks) is duplicated once. *)
  check bool "blocks grew by the body size" true
    (List.length (Func.labels fn) >= blocks_before + 5);
  (* Still exactly one natural loop rooted at the original header. *)
  let forest = Uu_analysis.Loops.analyze fn in
  let loops = Uu_analysis.Loops.loops forest in
  check int "one loop" 1 (List.length loops);
  check int "same header" header (List.hd loops).Uu_analysis.Loops.header

let test_unroll_rejects () =
  let fn = Ir_helpers.compile_one counted_loop_src in
  let header = first_loop fn in
  check bool "factor 1 refused" false (Uu_opt.Unroll.unroll_loop fn ~header ~factor:1);
  check bool "bogus header refused" false
    (Uu_opt.Unroll.unroll_loop fn ~header:9999 ~factor:2)

let test_unmerge_semantics () =
  ignore
    (run_both counted_loop_src [ 13L ] ~transform:(fun fn header ->
         let o = Unmerge.unmerge_loop fn ~header ~budget:4096 in
         check bool "unmerge changed" true o.Unmerge.changed))

let test_unmerge_removes_merges () =
  let fn = Ir_helpers.compile_one counted_loop_src in
  let header = first_loop fn in
  ignore (Unmerge.unmerge_loop fn ~header ~budget:4096);
  (* No block inside the loop other than the header has 2+ predecessors. *)
  let forest = Uu_analysis.Loops.analyze fn in
  let loop = List.hd (Uu_analysis.Loops.loops forest) in
  let preds = Cfg.predecessors fn in
  Value.Label_set.iter
    (fun l ->
      if l <> loop.Uu_analysis.Loops.header then
        match Hashtbl.find_opt preds l with
        | Some (_ :: _ :: _) ->
          Alcotest.fail (Printf.sprintf "merge block bb%d survives inside loop" l)
        | Some _ | None -> ())
    loop.Uu_analysis.Loops.blocks

let test_uu_semantics_all_factors () =
  List.iter
    (fun factor ->
      ignore
        (run_both counted_loop_src [ 13L ] ~transform:(fun fn header ->
             let o = Uu.uu_loop fn ~header ~factor in
             check bool "applied" true o.Uu.applied)))
    [ 1; 2; 4; 8 ]

let test_uu_paths_match_formula () =
  (* After u&u with factor u on a 2-path body, the header has p^u latch
     predecessors (paper SIII-A: the p^(u-1) ... path tree). *)
  let fn = Ir_helpers.compile_one counted_loop_src in
  let header = first_loop fn in
  ignore (Uu.uu_loop fn ~header ~factor:2);
  let preds = Cfg.preds_of fn header in
  let forest = Uu_analysis.Loops.analyze fn in
  let loop = List.hd (Uu_analysis.Loops.loops forest) in
  let in_loop =
    List.filter (fun p -> Value.Label_set.mem p loop.Uu_analysis.Loops.blocks) preds
  in
  check int "4 unmerged paths for p=2,u=2" 4 (List.length in_loop)

let test_uu_budget_rolls_back () =
  let fn = Ir_helpers.compile_one counted_loop_src in
  let header = first_loop fn in
  let before = Printer.func_to_string fn in
  let o = Uu.uu_loop ~budget:3 fn ~header ~factor:8 in
  check bool "budget exhausted" true o.Uu.budget_exhausted;
  check bool "not applied" false o.Uu.applied;
  check Alcotest.string "function rolled back" before (Printer.func_to_string fn)

let test_uu_skips_convergent () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  int i = 0;
  while (i < n) {
    __syncthreads();
    i = i + 1;
  }
  out[tid] = i;
}
|}
  in
  let header = first_loop fn in
  let o = Uu.uu_loop fn ~header ~factor:2 in
  check bool "convergent loop untouched" false o.Uu.applied

let test_uu_sets_pragma () =
  let fn = Ir_helpers.compile_one counted_loop_src in
  let header = first_loop fn in
  ignore (Uu.uu_loop fn ~header ~factor:2);
  check bool "tagged no-unroll" true (Hashtbl.mem fn.Func.pragmas header)

let test_heuristic_plan () =
  let fn = Ir_helpers.compile_one counted_loop_src in
  ignore (Uu_opt.Pass.exec ~options:Uu_opt.Pass.unverified Pipelines.early_passes fn);
  let plan = Uu.plan_heuristic fn Uu.default_params in
  check int "one loop chosen" 1 (List.length plan);
  let _, factor = List.hd plan in
  check bool "factor within bounds" true (factor >= 2 && factor <= 8);
  (* The chosen factor satisfies f(p,s,u) < c. *)
  let forest = Uu_analysis.Loops.analyze fn in
  let l = List.hd (Uu_analysis.Loops.loops forest) in
  let s = Uu_analysis.Cost_model.loop_size fn l in
  let p = Uu_analysis.Cost_model.path_count fn l in
  check bool "f(p,s,u) < c" true
    (Uu_analysis.Cost_model.duplicated_size ~p ~s ~u:factor < Uu.default_params.Uu.c)

let test_heuristic_skips_pragma () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int n) {
  int acc = 0;
  int i = 0;
  #pragma unroll 4
  while (i < n) {
    if (i & 1) { acc = acc + i; }
    i = i + 1;
  }
  out[0] = acc;
}
|}
  in
  ignore (Uu_opt.Pass.exec ~options:Uu_opt.Pass.unverified Pipelines.early_passes fn);
  check int "annotated loop skipped" 0 (List.length (Uu.plan_heuristic fn Uu.default_params))

let test_heuristic_innermost_first () =
  let fn =
    Ir_helpers.compile_one
      {|
kernel k(int* restrict out, int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    int j = 0;
    while (j < n) {
      if (j & 1) { acc = acc + j; } else { acc = acc + 1; }
      j = j + 1;
    }
    i = i + 1;
  }
  out[0] = acc;
}
|}
  in
  ignore (Uu_opt.Pass.exec ~options:Uu_opt.Pass.unverified Pipelines.early_passes fn);
  let plan = Uu.plan_heuristic fn Uu.default_params in
  (* Only the inner loop is transformed; the outer is skipped because a
     descendant was chosen (SIII-C). *)
  check int "only innermost chosen" 1 (List.length plan);
  let forest = Uu_analysis.Loops.analyze fn in
  let chosen, _ = List.hd plan in
  let l =
    List.find
      (fun (l : Uu_analysis.Loops.loop) -> l.header = chosen)
      (Uu_analysis.Loops.loops forest)
  in
  check int "chosen loop is depth 2" 2 l.Uu_analysis.Loops.depth

let test_heuristic_divergence_extension () =
  let complex = Uu_benchmarks.Complex_app.app in
  let m = Uu_frontend.Lower.compile ~name:"c" complex.Uu_benchmarks.App.source in
  let fn = List.hd m.Func.funcs in
  ignore (Uu_opt.Pass.exec ~options:Uu_opt.Pass.unverified Pipelines.early_passes fn);
  let base_plan = Uu.plan_heuristic fn Uu.default_params in
  let div_plan =
    Uu.plan_heuristic fn { Uu.default_params with Uu.avoid_divergent = true }
  in
  check bool "paper heuristic picks the loop" true (base_plan <> []);
  check int "divergence-aware heuristic refuses" 0 (List.length div_plan)

let test_dbds_ablation () =
  let fn = Ir_helpers.compile_one counted_loop_src in
  let header = first_loop fn in
  let o = Unmerge.dbds_unmerge_loop fn ~header ~budget:4096 in
  check bool "dbds applied" true o.Unmerge.changed;
  Verifier.check_exn fn;
  Uu_analysis.Ssa_check.check_exn fn;
  let got = Ir_helpers.run_kernel fn [ 13L ] in
  let reference = Ir_helpers.run_kernel (Ir_helpers.compile_one counted_loop_src) [ 13L ] in
  check bool "dbds preserves semantics" true (got = reference)

let test_selective_unmerge () =
  (* Selective u&u duplicates less code than full u&u on the same loop but
     still applies and preserves semantics (paper SVI future work). *)
  let reference =
    Ir_helpers.run_kernel (Ir_helpers.compile_one counted_loop_src) [ 13L ]
  in
  let full = Ir_helpers.compile_one counted_loop_src in
  let header = first_loop full in
  let o_full = Uu.uu_loop full ~header ~factor:2 in
  let sel = Ir_helpers.compile_one counted_loop_src in
  let header_s = first_loop sel in
  let o_sel = Uu.uu_loop ~selective:true sel ~header:header_s ~factor:2 in
  check bool "selective applied" true o_sel.Uu.applied;
  check bool "selective duplicates no more than full" true
    (o_sel.Uu.duplicated_blocks <= o_full.Uu.duplicated_blocks);
  Verifier.check_exn sel;
  Uu_analysis.Ssa_check.check_exn sel;
  check bool "selective preserves semantics" true
    (Ir_helpers.run_kernel sel [ 13L ] = reference)

let nested_src =
  {|
kernel k(int* restrict out, int n) {
  int tid = threadIdx.x;
  int acc = 0;
  int i = 0;
  while (i < n) {
    int j = 0;
    while (j < 3) {
      if ((j + tid) & 1) { acc = acc + j; } else { acc = acc - 1; }
      j = j + 1;
    }
    i = i + 1;
  }
  out[tid] = acc;
}
|}

let outer_loop fn =
  ignore (Uu_opt.Pass.exec ~options:Uu_opt.Pass.unverified Pipelines.early_passes fn);
  let forest = Uu_analysis.Loops.analyze fn in
  (List.find (fun (l : Uu_analysis.Loops.loop) -> l.depth = 1)
     (Uu_analysis.Loops.loops forest))
    .Uu_analysis.Loops.header

let test_unroll_nested_option () =
  let reference = Ir_helpers.run_kernel (Ir_helpers.compile_one nested_src) [ 4L ] in
  let plain = Ir_helpers.compile_one nested_src in
  let header = outer_loop plain in
  ignore (Uu.uu_loop plain ~header ~factor:2);
  let nested = Ir_helpers.compile_one nested_src in
  let header_n = outer_loop nested in
  let o = Uu.uu_loop ~unroll_nested:true nested ~header:header_n ~factor:2 in
  check bool "applied" true o.Uu.applied;
  Verifier.check_exn nested;
  Uu_analysis.Ssa_check.check_exn nested;
  check bool "nest unrolling duplicates more" true
    (List.length (Func.labels nested) > List.length (Func.labels plain));
  check bool "semantics preserved (plain)" true
    (Ir_helpers.run_kernel plain [ 4L ] = reference);
  check bool "semantics preserved (nested)" true
    (Ir_helpers.run_kernel nested [ 4L ] = reference)

let test_provenance_labels () =
  (* After u&u the duplicated paths carry known condition outcomes — the
     paper's Figure 5 T/F/X labels. *)
  let fn = Ir_helpers.compile_one counted_loop_src in
  let header = first_loop fn in
  ignore (Uu.uu_loop fn ~header ~factor:2);
  let report = Provenance.analyze fn in
  check bool "at least one condition column" true (report.Provenance.conditions <> []);
  let strings =
    List.map (fun (_, l) -> Provenance.label_string l) report.Provenance.per_block
  in
  check bool "some block knows an outcome (T)" true
    (List.exists (fun s -> String.contains s 'T') strings);
  check bool "some block knows an outcome (F)" true
    (List.exists (fun s -> String.contains s 'F') strings);
  (* The entry knows nothing. *)
  let entry_labels = List.assoc fn.Func.entry report.Provenance.per_block in
  check bool "entry is all X" true
    (Array.for_all (fun l -> l = Provenance.Unknown) entry_labels)

let test_pipeline_configs_distinct () =
  check Alcotest.string "name" "u&u-4" (Pipelines.config_name (Pipelines.Uu 4));
  check int "standard configs" 9 (List.length Pipelines.all_standard)

let test_pipeline_only_none () =
  (* Only [] behaves exactly like the baseline. *)
  let fn1 = Ir_helpers.compile_one counted_loop_src in
  ignore (Pipelines.optimize Pipelines.Baseline fn1);
  let fn2 = Ir_helpers.compile_one counted_loop_src in
  ignore (Pipelines.optimize ~targets:(Pipelines.Only []) (Pipelines.Uu 4) fn2);
  check Alcotest.string "same code" (Printer.func_to_string fn1) (Printer.func_to_string fn2)

let suite =
  [
    ("unroll preserves semantics (factors 2,3,4,8)", `Quick, test_unroll_semantics);
    ("unroll structure", `Quick, test_unroll_structure);
    ("unroll rejects bad inputs", `Quick, test_unroll_rejects);
    ("unmerge preserves semantics", `Quick, test_unmerge_semantics);
    ("unmerge leaves no merges in loop", `Quick, test_unmerge_removes_merges);
    ("u&u preserves semantics (factors 1,2,4,8)", `Quick, test_uu_semantics_all_factors);
    ("u&u path count matches p^u", `Quick, test_uu_paths_match_formula);
    ("u&u budget rolls back transactionally", `Quick, test_uu_budget_rolls_back);
    ("u&u skips convergent loops", `Quick, test_uu_skips_convergent);
    ("u&u tags loops no-unroll", `Quick, test_uu_sets_pragma);
    ("heuristic plan respects f(p,s,u) < c", `Quick, test_heuristic_plan);
    ("heuristic skips pragma loops", `Quick, test_heuristic_skips_pragma);
    ("heuristic visits innermost first", `Quick, test_heuristic_innermost_first);
    ("divergence-aware heuristic (SV extension)", `Quick, test_heuristic_divergence_extension);
    ("DBDS one-level ablation", `Quick, test_dbds_ablation);
    ("selective unmerge (SVI extension)", `Quick, test_selective_unmerge);
    ("condition provenance (Figure 5)", `Quick, test_provenance_labels);
    ("nested-loop unrolling option", `Quick, test_unroll_nested_option);
    ("pipeline config naming", `Quick, test_pipeline_configs_distinct);
    ("Only [] equals baseline", `Quick, test_pipeline_only_none);
  ]
